(** Serial fault simulation over word-parallel patterns.

    For each fault the faulty machine is re-simulated against the good
    one; a fault is detected by a pattern batch when any observed signal
    differs in any bit position. Pattern batches pack
    [Gate.bits_per_word] vectors per word, so a segment with k inputs is
    exhausted in [ceil(2^k / 62)] batches. *)

type observation = {
  good : int array;    (** observed words, fault-free *)
  faulty : int array;  (** observed words under the fault *)
}

val segment_detects :
  Simulator.t ->
  Ppet_netlist.Segment.t ->
  patterns:int array list ->
  Fault.t list ->
  (Fault.t * bool) list
(** [segment_detects sim seg ~patterns faults]: each element of
    [patterns] is a batch assigning one word per segment input signal
    (order of [Segment.input_signals]). Observation points are the
    segment's [observed] nodes. Returns each fault with its detection
    verdict over all batches. *)

val pack_vectors : width:int -> int list -> int array list
(** Pack bit vectors (input i = bit i of each vector) into word batches
    of [Gate.bits_per_word] vectors each, the final batch ragged. One
    pass over the list; the packing {!exhaustive_patterns} and
    {!lfsr_patterns} are built from. *)

val exhaustive_patterns : width:int -> int array list
(** All [2^width] input vectors, packed into word batches: batch j gives,
    for input bit i, the word whose bit b is the value of input i in
    vector [j * bits_per_word + b]. Width must be at most 24. *)

val lfsr_patterns : width:int -> count:int -> int array list
(** The first [count] patterns of the standard CBIT LFSR of that width
    (plus the all-zero vector first, which the autonomous LFSR cannot
    produce), packed like {!exhaustive_patterns}. *)

val coverage : (Fault.t * bool) list -> float
(** Detected fraction, in [0, 1]; 1.0 for an empty list. *)
