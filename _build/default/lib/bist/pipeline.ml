type pipe = {
  pipe_id : int;
  widths : int list;
}

type schedule = {
  pipes : pipe list;
  phases : int;
  scan_bits : int;
}

let make ?(phases = 2) ~widths () =
  if phases < 1 then invalid_arg "Pipeline.make: phases must be positive";
  let pipes =
    List.mapi
      (fun i ws ->
        List.iter
          (fun w ->
            if w < 1 || w > 32 then
              invalid_arg "Pipeline.make: CBIT widths must be in 1..32")
          ws;
        { pipe_id = i; widths = ws })
      widths
  in
  let scan_bits =
    List.fold_left
      (fun acc p -> acc + List.fold_left ( + ) 0 p.widths)
      0 pipes
  in
  { pipes; phases; scan_bits }

let of_segment_widths widths = make ~widths:[ widths ] ()

let max_width s =
  List.fold_left
    (fun acc p -> List.fold_left max acc p.widths)
    1 s.pipes

let dominated_by = max_width

let burst_cycles s =
  float_of_int s.phases *. Cbit.testing_time (max_width s)

let total_cycles s =
  float_of_int s.scan_bits +. burst_cycles s +. float_of_int s.scan_bits

let speedup_vs_serial s =
  let serial =
    List.fold_left
      (fun acc p ->
        List.fold_left (fun a w -> a +. Cbit.testing_time w) acc p.widths)
      0.0 s.pipes
  in
  let serial = serial +. (2.0 *. float_of_int s.scan_bits) in
  serial /. total_cycles s

let pp ppf s =
  Format.fprintf ppf
    "@[<v>PPET schedule: %d pipe(s), %d phase(s), scan %d bits@,\
     dominant CBIT width %d -> burst %.0f cycles, total %.0f cycles@,\
     speed-up vs serial testing: %.2fx@]"
    (List.length s.pipes) s.phases s.scan_bits (dominated_by s)
    (burst_cycles s) (total_cycles s) (speedup_vs_serial s)

let power_constrained ~widths ~max_per_pipe =
  if max_per_pipe < 1 then
    invalid_arg "Pipeline.power_constrained: max_per_pipe must be positive";
  let sorted = List.sort (fun a b -> compare b a) widths in
  let rec chunk acc current count = function
    | [] -> List.rev (if current = [] then acc else List.rev current :: acc)
    | w :: tl ->
      if count = max_per_pipe then chunk (List.rev current :: acc) [ w ] 1 tl
      else chunk acc (w :: current) (count + 1) tl
  in
  make ~widths:(chunk [] [] 0 sorted) ()

let sequential_cycles s =
  let bursts =
    List.fold_left
      (fun acc p ->
        let widest = List.fold_left max 1 p.widths in
        acc +. (float_of_int s.phases *. Cbit.testing_time widest))
      0.0 s.pipes
  in
  float_of_int (2 * s.scan_bits) +. bursts
