type variant =
  | Fresh_with_mux
  | Fresh
  | Converted

let relative_area = function
  | Fresh_with_mux -> 2.3
  | Fresh -> 1.9
  | Converted -> 0.9

let area_units v = 10.0 *. relative_area v

type mode =
  | Normal
  | Tpg
  | Psa
  | Scan

let next_bit mode ~data_in ~feedback ~scan_in ~current =
  ignore current;
  match mode with
  | Normal -> data_in
  | Tpg -> feedback
  | Psa -> data_in <> feedback
  | Scan -> scan_in
