type t = {
  poly_low : int;  (* feedback polynomial without its leading term *)
  w : int;
  mask : int;
  mutable st : int;
}

let create ?poly ~width () =
  if width < 1 || width > 32 then invalid_arg "Lfsr.create: width must be in 1..32";
  let poly = match poly with Some p -> p | None -> Gf2_poly.primitive width in
  if Gf2_poly.degree poly <> width then
    invalid_arg "Lfsr.create: polynomial degree differs from width";
  let mask = (1 lsl width) - 1 in
  { poly_low = poly land mask; w = width; mask; st = 1 }

let width t = t.w

let state t = t.st

let set_state t v =
  if v land t.mask <> v then invalid_arg "Lfsr.set_state: value too wide";
  t.st <- v

(* Galois configuration: shift left; when the bit leaving the register is
   one, xor the feedback taps in. *)
let step t =
  let out = (t.st lsr (t.w - 1)) land 1 in
  let shifted = (t.st lsl 1) land t.mask in
  t.st <- (if out = 1 then shifted lxor t.poly_low else shifted);
  t.st

let run t k =
  for _ = 1 to k do
    ignore (step t)
  done;
  t.st

let period t =
  let start = t.st in
  if start = 0 then 1
  else begin
    let count = ref 0 in
    let continue = ref true in
    while !continue do
      ignore (step t);
      incr count;
      if t.st = start then continue := false
    done;
    !count
  end

let sequence t k = List.init k (fun _ -> step t)
