(** Cascadable Built-In Tester (CBIT) — a bank of A_CELLs grouped into a
    dual-mode LFSR/MISR with a scan path (paper Sec. 1 and Table 1).

    In a PPET pipeline each CBIT generates pseudo-exhaustive patterns for
    the segment it precedes (TPG) and, in other pipes, compresses the
    responses of the segment it follows (PSA) — the dual-mode capability
    that lets one register bank serve two CUTs. *)

type t

val create : ?poly:Gf2_poly.t -> width:int -> unit -> t
(** Width 1..32, polynomial defaults to the primitive table. *)

val width : t -> int

val mode : t -> Acell.mode

val set_mode : t -> Acell.mode -> unit

val state : t -> int

val load : t -> int -> unit
(** Parallel load (models a completed scan initialisation). *)

val clock : t -> ?data:int -> ?scan_in:bool -> unit -> unit
(** One clock edge. [data] is the parallel input from the preceding
    segment (used in Normal and PSA modes); [scan_in] feeds the serial
    path in Scan mode. *)

val scan_out_bit : t -> bool
(** The serial output (MSB) — chained into the next CBIT's [scan_in]. *)

(** {2 Area model — Table 1} *)

type cost_row = {
  label : string;       (** d1..d6 *)
  length : int;         (** l_k *)
  area_per_dff : float; (** p_k *)
  per_bit : float;      (** sigma_k = p_k / l_k *)
}

val cost_table : cost_row array
(** The six published rows of Table 1. *)

val area_per_dff : int -> float
(** p for an arbitrary length 1..32: table value when the length is
    listed, otherwise linear interpolation of the per-bit overhead
    between neighbouring rows. *)

val feedback_overhead : int -> float
(** [area_per_dff l -. 1.9 *. l] — the polynomial xor network cost in
    DFF units, the part of a CBIT that remains even when every stage
    reuses a retimed functional register. *)

val testing_time : int -> float
(** [2^l] clock cycles — the exhaustive pattern count dominating a test
    pipe (Figs. 1b and 4). Returned as float: lengths up to 32. *)
