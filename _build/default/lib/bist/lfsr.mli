(** Galois LFSR — the test-pattern-generation half of a dual-mode CBIT.

    In TPG mode a CBIT of length n steps through all [2^n - 1] non-zero
    states when its feedback polynomial is primitive, applying a
    pseudo-exhaustive pattern sequence to the inputs of the circuit
    segment it feeds; adding the all-zero pattern (which an autonomous
    LFSR cannot reach) makes the test exhaustive, so the paper budgets
    [O(2^n)] clock cycles per segment. *)

type t

val create : ?poly:Gf2_poly.t -> width:int -> unit -> t
(** Fresh LFSR seeded with state 1. [poly] defaults to
    [Gf2_poly.primitive width]. Raises [Invalid_argument] when the
    polynomial degree differs from [width] or the width is outside
    1..32. *)

val width : t -> int

val state : t -> int
(** Current parallel output — the pattern applied to the segment. *)

val set_state : t -> int -> unit
(** Load a state (scan initialisation). Raises [Invalid_argument] if the
    value does not fit the width. *)

val step : t -> int
(** Advance one clock; returns the new state. *)

val run : t -> int -> int
(** [run t k] steps k times, returning the final state. *)

val period : t -> int
(** Cycle length from the current state (brute force; intended for
    widths <= 24 in tests). *)

val sequence : t -> int -> int list
(** The next k states, advancing the LFSR. *)
