type t = int

let degree p =
  if p <= 0 then invalid_arg "Gf2_poly.degree: zero or negative polynomial";
  let rec loop d v = if v <= 1 then d else loop (d + 1) (v lsr 1) in
  loop 0 p

(* reduce a modulo p (p non-zero) *)
let rec reduce a ~modulus =
  if a = 0 then 0
  else
    let da = degree a and dp = degree modulus in
    if da < dp then a
    else reduce (a lxor (modulus lsl (da - dp))) ~modulus

(* carry-less product; operands must keep the result under 62 bits *)
let clmul a b =
  let acc = ref 0 in
  let a = ref a and shift = ref b in
  while !a <> 0 do
    if !a land 1 = 1 then acc := !acc lxor !shift;
    a := !a lsr 1;
    shift := !shift lsl 1
  done;
  !acc

let mul_mod a b ~modulus =
  let a = reduce a ~modulus and b = reduce b ~modulus in
  reduce (clmul a b) ~modulus

let pow_mod base e ~modulus =
  if Int64.compare e 0L < 0 then invalid_arg "Gf2_poly.pow_mod: negative exponent";
  let result = ref (reduce 1 ~modulus) in
  let base = ref (reduce base ~modulus) in
  let e = ref e in
  while Int64.compare !e 0L > 0 do
    if Int64.logand !e 1L = 1L then result := mul_mod !result !base ~modulus;
    base := mul_mod !base !base ~modulus;
    e := Int64.shift_right_logical !e 1
  done;
  !result

let rec gcd a b = if b = 0 then a else gcd b (reduce a ~modulus:b)

let prime_factors m =
  let rec strip m p acc =
    if m mod p = 0 then strip (m / p) p (if List.mem p acc then acc else p :: acc)
    else (m, acc)
  in
  let rec loop m p acc =
    if m = 1 then acc
    else if p * p > m then m :: acc
    else
      let m, acc = strip m p acc in
      loop m (p + 1) acc
  in
  List.rev (loop m 2 [])

(* x^(2^k) mod p by k squarings of x *)
let x_to_pow2 k ~modulus =
  let t = ref (reduce 2 ~modulus) in
  for _ = 1 to k do
    t := mul_mod !t !t ~modulus
  done;
  !t

let is_irreducible p =
  if p < 2 then false
  else
    let n = degree p in
    if n = 0 then false
    else if n = 1 then true
    else begin
      let x = reduce 2 ~modulus:p in
      (* Rabin: x^(2^n) = x, and gcd(p, x^(2^(n/q)) - x) = 1 per prime q|n *)
      x_to_pow2 n ~modulus:p = x
      && List.for_all
           (fun q ->
             let h = x_to_pow2 (n / q) ~modulus:p lxor x in
             h <> 0 && degree (gcd p h) = 0)
           (prime_factors n)
    end

let is_primitive p =
  if p < 2 then false
  else
    let n = degree p in
    if n = 0 then false
    else if n = 1 then p = 3 (* x + 1: x = 1 mod p, order 1 = 2^1 - 1 *)
    else if not (is_irreducible p) then false
    else begin
      let ord = Int64.sub (Int64.shift_left 1L n) 1L in
      let x = 2 in
      pow_mod x ord ~modulus:p = 1
      && List.for_all
           (fun f ->
             pow_mod x (Int64.div ord (Int64.of_int f)) ~modulus:p <> 1)
           (prime_factors (Int64.to_int ord))
    end

(* Standard minimal-tap primitive polynomials (Bardell/McAnney/Savir,
   "Built-In Test for VLSI", App. B). Validated by the test suite against
   [is_primitive]. *)
let table =
  [|
    0b11 (* 1: x+1 *);
    0b111 (* 2 *);
    0b1011 (* 3: x^3+x+1 *);
    0b10011 (* 4: x^4+x+1 *);
    0b100101 (* 5: x^5+x^2+1 *);
    0b1000011 (* 6: x^6+x+1 *);
    0b10000011 (* 7: x^7+x+1 *);
    0b100011101 (* 8: x^8+x^4+x^3+x^2+1 *);
    0b1000010001 (* 9: x^9+x^4+1 *);
    0b10000001001 (* 10: x^10+x^3+1 *);
    0b100000000101 (* 11: x^11+x^2+1 *);
    0b1000001010011 (* 12: x^12+x^6+x^4+x+1 *);
    0b10000000011011 (* 13: x^13+x^4+x^3+x+1 *);
    0b100010001000011 (* 14: x^14+x^10+x^6+x+1 *);
    0b1000000000000011 (* 15: x^15+x+1 *);
    0b10001000000001011 (* 16: x^16+x^12+x^3+x+1 *);
    0b100000000000001001 (* 17: x^17+x^3+1 *);
    0b1000000000010000001 (* 18: x^18+x^7+1 *);
    0b10000000000000100111 (* 19: x^19+x^5+x^2+x+1 *);
    0b100000000000000001001 (* 20: x^20+x^3+1 *);
    0b1000000000000000000101 (* 21: x^21+x^2+1 *);
    0b10000000000000000000011 (* 22: x^22+x+1 *);
    0b100000000000000000100001 (* 23: x^23+x^5+1 *);
    0b1000000000000000010000111 (* 24: x^24+x^7+x^2+x+1 *);
    0b10000000000000000000001001 (* 25: x^25+x^3+1 *);
    0b100000000000000000001000111 (* 26: x^26+x^6+x^2+x+1 *);
    0b1000000000000000000000100111 (* 27: x^27+x^5+x^2+x+1 *);
    0b10000000000000000000000001001 (* 28: x^28+x^3+1 *);
    0b100000000000000000000000000101 (* 29: x^29+x^2+1 *);
    0b1000000100000000000000000000111 (* 30: x^30+x^23+x^2+x+1 *);
    0b10000000000000000000000000001001 (* 31: x^31+x^3+1 *);
    0b100000000010000000000000000000111 (* 32: x^32+x^22+x^2+x+1 *);
  |]

let primitive n =
  if n < 1 || n > 32 then invalid_arg "Gf2_poly.primitive: degree must be in 1..32";
  table.(n - 1)

let taps p =
  let rec loop i acc = if i > degree p then acc else loop (i + 1) (if p land (1 lsl i) <> 0 then i :: acc else acc) in
  loop 0 []

let pp ppf p =
  let term = function
    | 0 -> "1"
    | 1 -> "x"
    | i -> Printf.sprintf "x^%d" i
  in
  match taps p with
  | [] -> Format.pp_print_string ppf "0"
  | ts ->
    Format.pp_print_string ppf (String.concat " + " (List.map term ts))
