module Circuit = Ppet_netlist.Circuit
module Gate = Ppet_netlist.Gate

type t = {
  c : Circuit.t;
  topo : int array;  (* combinational gates in dependency order *)
}

let create c =
  let levels = Circuit.levels c in
  let combs = Circuit.combinational c in
  let order = Array.copy combs in
  Array.sort (fun a b -> compare (levels.(a), a) (levels.(b), b)) order;
  { c; topo = order }

let circuit t = t.c

let order t = t.topo

let eval_gate t values id =
  let nd = Circuit.node t.c id in
  let ins = Array.map (fun f -> values.(f)) nd.Circuit.fanins in
  values.(id) <- Gate.eval_word nd.Circuit.kind ins

let eval_all t values =
  if Array.length values <> Circuit.size t.c then
    invalid_arg "Simulator.eval_all: values array size mismatch";
  Array.iter (fun id -> eval_gate t values id) t.topo

let eval_members t values ~member =
  if Array.length values <> Circuit.size t.c then
    invalid_arg "Simulator.eval_members: values array size mismatch";
  Array.iter (fun id -> if member.(id) then eval_gate t values id) t.topo

let step t ~state ~pi =
  let dffs = Circuit.dffs t.c in
  let pis = t.c.Circuit.inputs in
  if Array.length state <> Array.length dffs then
    invalid_arg "Simulator.step: state size mismatch";
  if Array.length pi <> Array.length pis then
    invalid_arg "Simulator.step: pi size mismatch";
  let values = Array.make (Circuit.size t.c) 0 in
  Array.iteri (fun i d -> values.(d) <- state.(i)) dffs;
  Array.iteri (fun i p -> values.(p) <- pi.(i)) pis;
  eval_all t values;
  let next =
    Array.map
      (fun d -> values.((Circuit.node t.c d).Circuit.fanins.(0)))
      dffs
  in
  let pos = Array.map (fun o -> values.(o)) t.c.Circuit.outputs in
  (next, pos)

let run t ~state ~pis =
  let state = ref (Array.copy state) in
  let outs =
    List.map
      (fun pi ->
        let next, po = step t ~state:!state ~pi in
        state := next;
        po)
      pis
  in
  (!state, outs)
