module Circuit = Ppet_netlist.Circuit
module Gate = Ppet_netlist.Gate
module Segment = Ppet_netlist.Segment

type observation = {
  good : int array;
  faulty : int array;
}

let word_mask = max_int

let const_of stuck_at = if stuck_at then word_mask else 0

(* Evaluate the member gates with an optional fault injected. Sources
   (boundary signals) must be preset in [values]. *)
let eval_with_fault sim values ~member fault =
  let c = Simulator.circuit sim in
  (match fault with
   | Some { Fault.site = Fault.Output id; stuck_at }
     when not member.(id) || (Circuit.node c id).Circuit.kind = Gate.Input ->
     (* a stuck source: override before any gate reads it *)
     values.(id) <- const_of stuck_at
   | Some { Fault.site = Fault.Output _; _ }
   | Some { Fault.site = Fault.Input_pin _; _ }
   | None -> ());
  Array.iter
    (fun id ->
      if member.(id) then begin
        let nd = Circuit.node c id in
        let ins = Array.map (fun f -> values.(f)) nd.Circuit.fanins in
        (match fault with
         | Some { Fault.site = Fault.Input_pin (gid, pin); stuck_at }
           when gid = id ->
           ins.(pin) <- const_of stuck_at
         | Some { Fault.site = Fault.Input_pin _; _ }
         | Some { Fault.site = Fault.Output _; _ }
         | None -> ());
        let v = Gate.eval_word nd.Circuit.kind ins in
        let v =
          match fault with
          | Some { Fault.site = Fault.Output oid; stuck_at } when oid = id ->
            const_of stuck_at
          | Some { Fault.site = Fault.Output _; _ }
          | Some { Fault.site = Fault.Input_pin _; _ }
          | None -> v
        in
        values.(id) <- v
      end)
    (Simulator.order sim)

let check_members c (seg : Segment.t) =
  Array.iter
    (fun id ->
      if (Circuit.node c id).Circuit.kind = Gate.Dff then
        invalid_arg
          "Fault_sim: segment members must be combinational (map clusters \
           with their flip-flops on the boundary)")
    seg.Segment.members

let segment_detects sim (seg : Segment.t) ~patterns faults =
  let c = Simulator.circuit sim in
  check_members c seg;
  let n = Circuit.size c in
  let member = Array.make n false in
  Array.iter (fun id -> member.(id) <- true) seg.Segment.members;
  let inputs = Segment.input_signals seg in
  let detected = Hashtbl.create (List.length faults) in
  List.iter (fun f -> Hashtbl.replace detected f false) faults;
  List.iter
    (fun batch ->
      if Array.length batch <> Array.length inputs then
        invalid_arg "Fault_sim.segment_detects: batch arity mismatch";
      let base = Array.make n 0 in
      Array.iteri (fun i sig_id -> base.(sig_id) <- batch.(i)) inputs;
      let good = Array.copy base in
      eval_with_fault sim good ~member None;
      List.iter
        (fun f ->
          if not (Hashtbl.find detected f) then begin
            let faulty = Array.copy base in
            eval_with_fault sim faulty ~member (Some f);
            let differs =
              Array.exists
                (fun obs -> good.(obs) lxor faulty.(obs) <> 0)
                seg.Segment.observed
            in
            if differs then Hashtbl.replace detected f true
          end)
        faults)
    patterns;
  List.map (fun f -> (f, Hashtbl.find detected f)) faults

(* Single pass over the vector list: open a fresh word batch every
   [bits_per_word] vectors (the last one ragged), OR each vector's bits
   into the open batch as it streams by. *)
let pack_vectors ~width vectors =
  let bpw = Gate.bits_per_word in
  let rev_batches = ref [] in
  let words = ref [||] in
  let b = ref bpw in
  List.iter
    (fun vector ->
      if !b = bpw then begin
        words := Array.make width 0;
        rev_batches := !words :: !rev_batches;
        b := 0
      end;
      let w = !words in
      for i = 0 to width - 1 do
        if (vector lsr i) land 1 = 1 then w.(i) <- w.(i) lor (1 lsl !b)
      done;
      incr b)
    vectors;
  List.rev !rev_batches

let exhaustive_patterns ~width =
  if width < 0 || width > 24 then
    invalid_arg "Fault_sim.exhaustive_patterns: width must be in 0..24";
  let total = 1 lsl width in
  pack_vectors ~width (List.init total (fun v -> v))

let lfsr_patterns ~width ~count =
  if width < 1 || width > 32 then
    invalid_arg "Fault_sim.lfsr_patterns: width must be in 1..32";
  let l = Lfsr.create ~width () in
  let vectors = 0 :: List.filteri (fun i _ -> i < count - 1) (Lfsr.sequence l (max 0 (count - 1))) in
  pack_vectors ~width vectors

let coverage results =
  match results with
  | [] -> 1.0
  | _ ->
    let det = List.length (List.filter snd results) in
    float_of_int det /. float_of_int (List.length results)
