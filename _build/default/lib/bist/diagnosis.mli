(** Signature-based fault diagnosis.

    A BIST signature tells pass/fail; for debug one wants to know {e
    which} fault failed. Because the whole pseudo-exhaustive session is
    deterministic, every modelled fault maps to one signature — a fault
    dictionary. Looking up the observed signature returns the candidate
    faults (several faults may be signature-equivalent; the dictionary
    groups them). *)

type dictionary

val build :
  Simulator.t ->
  Ppet_netlist.Segment.t ->
  misr_width:int ->
  Fault.t list ->
  dictionary
(** Simulate the full exhaustive pattern set once per fault, compressing
    the observed responses into a [misr_width]-bit signature. Segment
    width is capped at 16 like {!Pet.run}. *)

val fault_free : dictionary -> int
(** The good-machine signature. *)

val lookup : dictionary -> int -> Fault.t list
(** Candidate faults for an observed signature; empty for an unknown
    signature (a fault outside the modelled list, or multiple faults). *)

val distinguishable_classes : dictionary -> int
(** Number of distinct faulty signatures — the dictionary's diagnostic
    resolution. *)

val undiagnosable : dictionary -> Fault.t list
(** Faults whose signature equals the fault-free one: redundant faults
    plus (rare) MISR aliasing victims. *)

val resolution : dictionary -> float
(** [distinguishable_classes / detected faults] in (0, 1]; 1.0 means
    every detected fault has a unique signature. 0.0 when nothing is
    detected. *)
