(** The scan chain linking all CBITs for global initialisation and
    signature read-out (paper Sec. 1).

    PPET's schedule is: scan in every CBIT's seed, run the self-test with
    each CBIT pair in TPG/PSA mode for [2^max-width] clocks, then scan
    the signatures out for comparison. The chain length therefore adds
    [total bits] cycles before and after the burst (Fig. 1b's global
    initialisation). *)

type t

val create : Cbit.t list -> t
(** Chain in scan order; the first CBIT receives the external scan-in. *)

val total_bits : t -> int

val initialise : t -> seeds:int list -> unit
(** Shift all seeds in serially (LSB first per CBIT, first CBIT's seed
    listed first) and verify by parallel inspection. Raises
    [Invalid_argument] on a length mismatch. Every CBIT is left in
    [Scan] mode with its seed loaded. *)

val read_signatures : t -> int list
(** Shift everything out serially (destructive, like hardware), returning
    the value each CBIT held, in chain order. *)

val set_all_modes : t -> Acell.mode -> unit

val cbits : t -> Cbit.t list
