(** MISR aliasing analysis.

    A signature register can miss a fault when the erroneous response
    stream compresses to the fault-free signature. For an n-bit MISR fed
    a stream of length m >> n with effectively random error patterns, the
    classic estimate of that probability is 2^-n; this module provides
    the analytic estimates used to size CBITs and an empirical measurement
    harness to check them (the "high fault coverage" argument of the
    paper rests on the pseudo-exhaustive patterns plus a small aliasing
    term). *)

val probability : width:int -> float
(** The asymptotic estimate 2^-width. *)

val probability_finite : width:int -> cycles:int -> float
(** Exact probability for a stream of [cycles] equiprobable error words:
    [(2^(k(m-1)) - 1) / (2^(km) - 1)] — zero for a single word, tending
    to 2^-width from below; 1.0 when [cycles] is 0 (no compaction). *)

val escape_rate :
  width:int -> trials:int -> seed:int64 -> burst:int -> float
(** Monte-Carlo measurement: inject [trials] random non-zero error
    streams of [burst] words into a MISR and report the fraction whose
    signature equals the fault-free one. Converges to {!probability} as
    trials grow. *)

val recommended_width : segments:int -> target:float -> int
(** Smallest MISR width whose union-bound escape probability over the
    given number of concurrently-tested segments stays below [target].
    Raises [Invalid_argument] if no width up to 32 suffices. *)
