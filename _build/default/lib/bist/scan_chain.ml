type t = { chain : Cbit.t array }

let create cbits = { chain = Array.of_list cbits }

let total_bits t = Array.fold_left (fun acc c -> acc + Cbit.width c) 0 t.chain

let set_all_modes t mode = Array.iter (fun c -> Cbit.set_mode c mode) t.chain

let cbits t = Array.to_list t.chain

(* One serial shift over the whole chain: bit enters the first CBIT; each
   CBIT's scan-out becomes the next one's scan-in. Shift the last CBIT
   first so every cell still sees its predecessor's pre-clock output —
   hardware clocks all cells on the same edge. *)
let shift_in t bit =
  let n = Array.length t.chain in
  let outs = Array.map Cbit.scan_out_bit t.chain in
  for i = n - 1 downto 0 do
    let scan_in = if i = 0 then bit else outs.(i - 1) in
    Cbit.clock t.chain.(i) ~scan_in ()
  done;
  if n = 0 then bit else outs.(n - 1)

let initialise t ~seeds =
  let n = Array.length t.chain in
  if List.length seeds <> n then
    invalid_arg "Scan_chain.initialise: need one seed per CBIT";
  set_all_modes t Acell.Scan;
  (* Serial protocol: the whole chain content, last CBIT's seed first so
     it travels the full length; within a CBIT the MSB goes first because
     the serial path shifts toward the MSB. *)
  let bits = ref [] in
  List.iter
    (fun (cb, seed) ->
      for b = 0 to Cbit.width cb - 1 do
        bits := ((seed lsr b) land 1 = 1) :: !bits
      done)
    (List.combine (Array.to_list t.chain) seeds);
  (* !bits now streams the last CBIT's MSB first — the bit that must
     travel the whole chain — and the first CBIT's LSB last. *)
  List.iter (fun b -> ignore (shift_in t b)) !bits;
  (* verify the parallel view *)
  List.iteri
    (fun i seed ->
      if Cbit.state t.chain.(i) <> seed then
        invalid_arg "Scan_chain.initialise: scan protocol mismatch")
    seeds

let read_signatures t =
  set_all_modes t Acell.Scan;
  let captured = Array.map Cbit.state t.chain in
  (* drain serially, as hardware would; the parallel snapshot above is
     what a tester reconstructs from the serial stream *)
  for _ = 1 to total_bits t do
    ignore (shift_in t false)
  done;
  Array.to_list captured
