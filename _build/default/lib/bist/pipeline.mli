(** The PPET pipeline schedule and testing-time model (paper Fig. 1).

    Non-overlapping segments are tested concurrently by CBIT pairs; each
    test pipe alternates TPG and PSA roles between phases so a CBIT that
    just compressed responses generates patterns in the next phase. After
    one global scan initialisation, every pipe runs for the exhaustive
    pattern count of its widest CBIT, so

    T_total = scan_in + phases * 2^(max width) + scan_out. *)

type pipe = {
  pipe_id : int;
  widths : int list;    (** CBIT widths along the pipe *)
}

type schedule = {
  pipes : pipe list;
  phases : int;         (** TPG/PSA alternation phases (2 for the classic
                            odd/even arrangement) *)
  scan_bits : int;      (** total scan-chain length *)
}

val make : ?phases:int -> widths:int list list -> unit -> schedule
(** One width list per pipe. *)

val of_segment_widths : int list -> schedule
(** Classic two-phase arrangement: all segments in one logical pipe,
    scan chain covering every CBIT. *)

val burst_cycles : schedule -> float
(** [phases * 2^max_width] — the concurrent self-test burst. *)

val total_cycles : schedule -> float
(** Burst plus scan-in and scan-out. *)

val dominated_by : schedule -> int
(** The width that dominates testing time (Fig. 1b's T_CBIT). *)

val speedup_vs_serial : schedule -> float
(** Testing time if segments were tested one after another (sum of
    2^w_i) divided by the pipelined time — the benefit PPET buys. *)

val pp : Format.formatter -> schedule -> unit

(** {2 Power-constrained scheduling}

    Running every pipe concurrently maximises speed but also switching
    power; when at most [max_per_pipe] segments may toggle together, the
    pipes execute one after another and the total time becomes the sum
    of per-pipe bursts. Grouping segments of similar width together then
    matters: a lone wide CBIT should not drag a pipe of narrow ones
    through its 2^w cycles. *)

val power_constrained : widths:int list -> max_per_pipe:int -> schedule
(** Sort widths descending and chunk them: each pipe holds at most
    [max_per_pipe] segments of adjacent widths, which minimises the sum
    of per-pipe dominant bursts for a fixed pipe count. *)

val sequential_cycles : schedule -> float
(** Total cycles when pipes run one after another: scan-in + the sum of
    per-pipe bursts + scan-out. *)
