(** Multiple-input signature register — the parallel-signature-analysis
    half of a dual-mode CBIT.

    In PSA mode the CBIT compresses the response stream of the preceding
    circuit segment: each clock xors the observed word into the shifting
    register. A fault-free run leaves a reference signature; any
    differing signature flags a detected fault (aliasing probability
    ~[2^-n]). *)

type t

val create : ?poly:Gf2_poly.t -> width:int -> unit -> t
(** Zero-initialised MISR; same width/polynomial rules as {!Lfsr.create}. *)

val width : t -> int

val signature : t -> int

val set_signature : t -> int -> unit

val absorb : t -> int -> int
(** [absorb t word] clocks once with the parallel input [word] (low
    [width] bits used); returns the new signature. *)

val absorb_all : t -> int list -> int

val reference : width:int -> ?poly:Gf2_poly.t -> int list -> int
(** Signature of a whole response stream from the zero state. *)
