(** Single stuck-at fault model.

    PPET targets stuck faults (paper Sec. 1); a fault pins either a
    node's output or one of a gate's input pins to a constant. The fault
    list for a segment covers every member gate's output and input pins
    plus the segment's boundary inputs as observed inside. *)

type site =
  | Output of int          (** node id whose output sticks *)
  | Input_pin of int * int (** (gate node id, pin index) *)

type t = { site : site; stuck_at : bool }

val equal : t -> t -> bool

val all_of_circuit : Ppet_netlist.Circuit.t -> t list
(** Both polarities on every gate/DFF/PI output and every gate input
    pin. *)

val of_segment : Ppet_netlist.Circuit.t -> Ppet_netlist.Segment.t -> t list
(** Faults local to a segment: member outputs and member gates' input
    pins (boundary drivers' outputs are tested in their own segment, but
    the pins reading them belong to this one). *)

val collapse : Ppet_netlist.Circuit.t -> t list -> t list
(** Cheap structural equivalence collapsing: a single-fanout gate input
    pin fault s-a-v is equivalent to its driver's output s-a-v, and for
    NOT/BUFF the output fault subsumes the input fault. Keeps the
    representative closest to the output. *)

val describe : Ppet_netlist.Circuit.t -> t -> string

val count_sites : t list -> int
(** Number of distinct sites (ignoring polarity). *)
