lib/bist/pipeline.ml: Cbit Format List
