lib/bist/gf2_poly.mli: Format
