lib/bist/pet.mli: Format Ppet_netlist Simulator
