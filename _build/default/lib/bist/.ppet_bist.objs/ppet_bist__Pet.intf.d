lib/bist/pet.mli: Format Ppet_netlist Ppet_parallel Simulator
