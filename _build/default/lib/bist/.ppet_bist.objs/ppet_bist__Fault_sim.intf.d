lib/bist/fault_sim.mli: Fault Ppet_netlist Simulator
