lib/bist/fault.mli: Ppet_netlist
