lib/bist/fault.ml: Array Hashtbl List Ppet_netlist Printf
