lib/bist/acell.ml:
