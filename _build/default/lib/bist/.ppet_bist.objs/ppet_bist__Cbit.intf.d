lib/bist/cbit.mli: Acell Gf2_poly
