lib/bist/fault_engine.ml: Array Fault Hashtbl List Ppet_netlist Ppet_parallel Simulator
