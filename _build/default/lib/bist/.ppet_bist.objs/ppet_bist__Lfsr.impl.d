lib/bist/lfsr.ml: Gf2_poly List
