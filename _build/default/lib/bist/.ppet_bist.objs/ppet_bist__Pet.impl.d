lib/bist/pet.ml: Fault Fault_sim Format List Ppet_netlist Simulator
