lib/bist/pet.ml: Fault Fault_engine Fault_sim Format List Ppet_netlist Simulator
