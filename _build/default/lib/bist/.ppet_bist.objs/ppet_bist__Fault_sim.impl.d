lib/bist/fault_sim.ml: Array Fault Hashtbl Lfsr List Ppet_netlist Simulator
