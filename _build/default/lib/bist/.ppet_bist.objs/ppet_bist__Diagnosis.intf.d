lib/bist/diagnosis.mli: Fault Ppet_netlist Simulator
