lib/bist/gf2_poly.ml: Array Format Int64 List Printf String
