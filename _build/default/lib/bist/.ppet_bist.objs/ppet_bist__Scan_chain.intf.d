lib/bist/scan_chain.mli: Acell Cbit
