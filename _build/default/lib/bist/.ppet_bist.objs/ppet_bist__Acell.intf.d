lib/bist/acell.mli:
