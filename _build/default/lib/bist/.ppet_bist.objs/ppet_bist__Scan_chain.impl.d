lib/bist/scan_chain.ml: Acell Array Cbit List
