lib/bist/pipeline.mli: Format
