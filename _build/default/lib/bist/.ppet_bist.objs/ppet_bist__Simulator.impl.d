lib/bist/simulator.ml: Array List Ppet_netlist
