lib/bist/simulator.mli: Ppet_netlist
