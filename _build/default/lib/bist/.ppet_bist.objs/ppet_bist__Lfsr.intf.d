lib/bist/lfsr.mli: Gf2_poly
