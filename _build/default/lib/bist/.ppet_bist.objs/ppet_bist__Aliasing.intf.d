lib/bist/aliasing.mli:
