lib/bist/aliasing.ml: Misr Ppet_digraph
