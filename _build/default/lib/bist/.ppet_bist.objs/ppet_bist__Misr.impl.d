lib/bist/misr.ml: Gf2_poly List
