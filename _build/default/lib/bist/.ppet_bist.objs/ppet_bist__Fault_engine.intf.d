lib/bist/fault_engine.mli: Fault Ppet_netlist Ppet_parallel Simulator
