lib/bist/misr.mli: Gf2_poly
