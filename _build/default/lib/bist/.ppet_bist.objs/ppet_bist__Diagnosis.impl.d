lib/bist/diagnosis.ml: Array Fault Hashtbl List Misr Ppet_netlist Simulator
