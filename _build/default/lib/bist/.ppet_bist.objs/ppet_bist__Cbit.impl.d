lib/bist/cbit.ml: Acell Array Gf2_poly
