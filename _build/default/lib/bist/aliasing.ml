module Prng = Ppet_digraph.Prng

let probability ~width =
  if width < 1 || width > 62 then invalid_arg "Aliasing.probability: bad width";
  ldexp 1.0 (-width)

(* Finite-length result for equiprobable k-bit error words: the map from
   m input words to the signature is linear and surjective, so exactly
   2^(k(m-1)) streams land on any given signature; removing the all-zero
   stream, P(alias) = (2^(k(m-1)) - 1) / (2^(km) - 1) — zero for a single
   word, tending to 2^-k from below as the stream grows. *)
let probability_finite ~width ~cycles =
  if width < 1 || width > 32 then
    invalid_arg "Aliasing.probability_finite: bad width";
  if cycles < 0 then invalid_arg "Aliasing.probability_finite: bad cycles";
  if cycles = 0 then 1.0
  else if cycles = 1 then 0.0
  else begin
    let k = width and m = cycles in
    if k * (m - 1) > 60 then probability ~width
    else
      let num = ldexp 1.0 (k * (m - 1)) -. 1.0 in
      let den = ldexp 1.0 (k * m) -. 1.0 in
      num /. den
  end

let escape_rate ~width ~trials ~seed ~burst =
  if trials < 1 then invalid_arg "Aliasing.escape_rate: trials must be positive";
  let rng = Prng.create seed in
  let mask = (1 lsl width) - 1 in
  let escapes = ref 0 in
  for _ = 1 to trials do
    (* the difference machine: an error stream aliases iff it compresses
       to zero from the zero state (MISR linearity) *)
    let m = Misr.create ~width () in
    let nonzero = ref false in
    for _ = 1 to burst do
      let e = Prng.int rng (mask + 1) in
      if e <> 0 then nonzero := true;
      ignore (Misr.absorb m e)
    done;
    if !nonzero && Misr.signature m = 0 then incr escapes
  done;
  float_of_int !escapes /. float_of_int trials

let recommended_width ~segments ~target =
  if segments < 1 then invalid_arg "Aliasing.recommended_width: no segments";
  if target <= 0.0 then invalid_arg "Aliasing.recommended_width: bad target";
  let rec search w =
    if w > 32 then
      invalid_arg "Aliasing.recommended_width: target unreachable below 33 bits"
    else if float_of_int segments *. probability ~width:w <= target then w
    else search (w + 1)
  in
  search 1
