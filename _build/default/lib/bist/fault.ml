module Circuit = Ppet_netlist.Circuit
module Gate = Ppet_netlist.Gate
module Segment = Ppet_netlist.Segment

type site =
  | Output of int
  | Input_pin of int * int

type t = { site : site; stuck_at : bool }

let equal a b = a = b

let both site = [ { site; stuck_at = false }; { site; stuck_at = true } ]

let gate_pin_sites (nd : Circuit.node) =
  match nd.Circuit.kind with
  | Gate.Input -> []
  | Gate.Dff | Gate.Buff | Gate.Not | Gate.And | Gate.Nand | Gate.Or
  | Gate.Nor | Gate.Xor | Gate.Xnor ->
    List.init (Array.length nd.Circuit.fanins) (fun pin ->
        Input_pin (nd.Circuit.id, pin))

let all_of_circuit c =
  let sites =
    Array.fold_left
      (fun acc (nd : Circuit.node) ->
        (Output nd.Circuit.id :: gate_pin_sites nd) @ acc)
      [] c.Circuit.nodes
  in
  List.concat_map both (List.rev sites)

let of_segment c (seg : Segment.t) =
  let sites =
    Array.fold_left
      (fun acc id ->
        let nd = Circuit.node c id in
        (Output id :: gate_pin_sites nd) @ acc)
      [] seg.Segment.members
  in
  List.concat_map both (List.rev sites)

let collapse c faults =
  let keep f =
    match f.site with
    | Output _ -> true
    | Input_pin (gid, pin) ->
      let nd = Circuit.node c gid in
      let driver = nd.Circuit.fanins.(pin) in
      let single_fanout = Array.length c.Circuit.fanouts.(driver) = 1 in
      (match nd.Circuit.kind with
       | Gate.Not | Gate.Buff | Gate.Dff ->
         (* output fault dominates the unique input fault *)
         false
       | Gate.And | Gate.Nand | Gate.Or | Gate.Nor | Gate.Xor | Gate.Xnor
       | Gate.Input ->
         (* a pin fed by a single-fanout net is equivalent to the
            driver's output fault *)
         not single_fanout)
  in
  List.filter keep faults

let describe c f =
  let name id = (Circuit.node c id).Circuit.name in
  let v = if f.stuck_at then 1 else 0 in
  match f.site with
  | Output id -> Printf.sprintf "%s output s-a-%d" (name id) v
  | Input_pin (id, pin) -> Printf.sprintf "%s input %d s-a-%d" (name id) pin v

let count_sites faults =
  let tbl = Hashtbl.create 64 in
  List.iter (fun f -> Hashtbl.replace tbl f.site ()) faults;
  Hashtbl.length tbl
