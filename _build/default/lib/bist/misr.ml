type t = {
  poly_low : int;
  w : int;
  mask : int;
  mutable st : int;
}

let create ?poly ~width () =
  if width < 1 || width > 32 then invalid_arg "Misr.create: width must be in 1..32";
  let poly = match poly with Some p -> p | None -> Gf2_poly.primitive width in
  if Gf2_poly.degree poly <> width then
    invalid_arg "Misr.create: polynomial degree differs from width";
  let mask = (1 lsl width) - 1 in
  { poly_low = poly land mask; w = width; mask; st = 0 }

let width t = t.w

let signature t = t.st

let set_signature t v =
  if v land t.mask <> v then invalid_arg "Misr.set_signature: value too wide";
  t.st <- v

let absorb t word =
  let out = (t.st lsr (t.w - 1)) land 1 in
  let shifted = (t.st lsl 1) land t.mask in
  let fed = if out = 1 then shifted lxor t.poly_low else shifted in
  t.st <- fed lxor (word land t.mask);
  t.st

let absorb_all t words =
  List.iter (fun w -> ignore (absorb t w)) words;
  t.st

let reference ~width ?poly words =
  let t = create ?poly ~width () in
  absorb_all t words
