type t = {
  poly_low : int;
  w : int;
  mask : int;
  mutable st : int;
  mutable md : Acell.mode;
}

let create ?poly ~width () =
  if width < 1 || width > 32 then invalid_arg "Cbit.create: width must be in 1..32";
  let poly = match poly with Some p -> p | None -> Gf2_poly.primitive width in
  if Gf2_poly.degree poly <> width then
    invalid_arg "Cbit.create: polynomial degree differs from width";
  let mask = (1 lsl width) - 1 in
  { poly_low = poly land mask; w = width; mask; st = 0; md = Acell.Normal }

let width t = t.w

let mode t = t.md

let set_mode t m = t.md <- m

let state t = t.st

let load t v =
  if v land t.mask <> v then invalid_arg "Cbit.load: value too wide";
  t.st <- v

let scan_out_bit t = (t.st lsr (t.w - 1)) land 1 = 1

(* The Galois feedback word: shift left, fold the leaving bit through the
   polynomial taps. *)
let lfsr_next t =
  let out = (t.st lsr (t.w - 1)) land 1 in
  let shifted = (t.st lsl 1) land t.mask in
  if out = 1 then shifted lxor t.poly_low else shifted

let clock t ?(data = 0) ?(scan_in = false) () =
  let data = data land t.mask in
  t.st <-
    (match t.md with
     | Acell.Normal -> data
     | Acell.Tpg -> lfsr_next t
     | Acell.Psa -> lfsr_next t lxor data
     | Acell.Scan ->
       (((t.st lsl 1) land t.mask) lor (if scan_in then 1 else 0)))

type cost_row = {
  label : string;
  length : int;
  area_per_dff : float;
  per_bit : float;
}

let cost_table =
  [|
    { label = "d1"; length = 4; area_per_dff = 8.14; per_bit = 2.04 };
    { label = "d2"; length = 8; area_per_dff = 16.68; per_bit = 2.09 };
    { label = "d3"; length = 12; area_per_dff = 24.48; per_bit = 2.04 };
    { label = "d4"; length = 16; area_per_dff = 32.21; per_bit = 2.01 };
    { label = "d5"; length = 24; area_per_dff = 47.66; per_bit = 1.99 };
    { label = "d6"; length = 32; area_per_dff = 63.12; per_bit = 1.97 };
  |]

(* Per-bit A_CELL cost is 1.9 DFF; the rest of p_k is the feedback
   network, which grows slowly with length. Interpolate that overhead
   linearly between table rows and extrapolate flat at the ends. *)
let overhead_at_row r = r.area_per_dff -. (1.9 *. float_of_int r.length)

let feedback_overhead l =
  if l < 1 || l > 32 then invalid_arg "Cbit.feedback_overhead: length must be in 1..32";
  let n = Array.length cost_table in
  if l <= cost_table.(0).length then overhead_at_row cost_table.(0)
  else if l >= cost_table.(n - 1).length then overhead_at_row cost_table.(n - 1)
  else begin
    let rec find i =
      if cost_table.(i + 1).length >= l then i else find (i + 1)
    in
    let i = find 0 in
    let lo = cost_table.(i) and hi = cost_table.(i + 1) in
    let frac =
      float_of_int (l - lo.length) /. float_of_int (hi.length - lo.length)
    in
    overhead_at_row lo +. (frac *. (overhead_at_row hi -. overhead_at_row lo))
  end

let area_per_dff l =
  match Array.find_opt (fun r -> r.length = l) cost_table with
  | Some r -> r.area_per_dff
  | None -> (1.9 *. float_of_int l) +. feedback_overhead l

let testing_time l =
  if l < 1 || l > 32 then invalid_arg "Cbit.testing_time: length must be in 1..32";
  ldexp 1.0 l
