(** The A_CELL test register cell (paper Fig. 3, ref [8]).

    An A_CELL augments a D flip-flop with a 2-input AND, a 2-input NOR
    and a 2-input XOR so the register can serve as an LFSR/MISR stage;
    a 2-to-1 MUX is additionally needed when the cell is inserted on a
    data path that keeps its original (unregistered) connection in normal
    mode. Areas are in DFF-relative units (DFF = 10 area units). *)

type variant =
  | Fresh_with_mux  (** new cell on an unregistered cut net: 2.3 DFF *)
  | Fresh           (** new cell, register path acceptable: 1.9 DFF *)
  | Converted       (** existing functional DFF converted: 0.9 DFF *)

val relative_area : variant -> float
(** Cost in DFF units (Fig. 3 arithmetic: (3+2+4+10)/10, plus 3/10 for
    the MUX, minus the reused DFF for conversions). *)

val area_units : variant -> float
(** Same in the paper's absolute area units (x10). *)

type mode =
  | Normal  (** transparent functional register *)
  | Tpg     (** LFSR stage generating patterns *)
  | Psa     (** MISR stage compressing responses *)
  | Scan    (** serial shift for initialisation / read-out *)

val next_bit :
  mode -> data_in:bool -> feedback:bool -> scan_in:bool -> current:bool -> bool
(** Single-cell next-state function: Normal latches [data_in]; Tpg
    latches [feedback] (the LFSR xor network); Psa latches
    [data_in xor feedback]; Scan latches [scan_in]. This is the gate
    network of Fig. 3(a): AND gates the data path, XOR folds in the
    feedback, NOR decodes the mode. *)
