(** Polynomials over GF(2), represented as bit masks, and the primitive
    feedback polynomials the CBITs use.

    A polynomial [x^4 + x + 1] is the mask [0b10011]: bit i is the
    coefficient of [x^i]. Degrees up to 32 are supported, enough for the
    CBIT types d1..d6 of Table 1 (lengths 4 to 32). A primitive
    polynomial of degree n makes an LFSR cycle through all [2^n - 1]
    non-zero states — the paper's "simple primitive feedback polynomial"
    whose existence keeps the per-bit CBIT cost low for large lengths. *)

type t = int
(** Bit-mask representation; degree = position of highest set bit. *)

val degree : t -> int

val mul_mod : t -> t -> modulus:t -> t
(** Product of two residues modulo [modulus] (carry-less). *)

val pow_mod : t -> int64 -> modulus:t -> t
(** [pow_mod base e ~modulus] by square-and-multiply. *)

val is_irreducible : t -> bool
(** Rabin's test: p of degree n is irreducible iff x^(2^n) = x (mod p)
    and gcd-type conditions on prime divisors of n hold. Degrees up to
    ~24 are exact and fast; larger inputs are accepted but slower. *)

val is_primitive : t -> bool
(** Irreducible and x has multiplicative order 2^n - 1 modulo p. Exact
    for all degrees up to 32 (the needed factorisations of 2^n - 1 are
    built in). *)

val primitive : int -> t
(** [primitive n] is a known primitive polynomial of degree n,
    1 <= n <= 32 (the standard minimal-tap table used in BIST
    literature). Raises [Invalid_argument] outside that range. *)

val taps : t -> int list
(** Exponents with non-zero coefficients, descending, e.g.
    [taps (primitive 4) = [4; 1; 0]]. *)

val pp : Format.formatter -> t -> unit
(** Pretty form, e.g. ["x^4 + x + 1"]. *)
