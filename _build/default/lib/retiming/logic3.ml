module Gate = Ppet_netlist.Gate

type t = Zero | One | X

let of_bool b = if b then One else Zero

let to_bool = function
  | Zero -> Some false
  | One -> Some true
  | X -> None

let equal a b =
  match a, b with
  | Zero, Zero | One, One | X, X -> true
  | (Zero | One | X), _ -> false

let compatible a b =
  match a, b with
  | X, _ | _, X -> true
  | Zero, Zero | One, One -> true
  | Zero, One | One, Zero -> false

let meet a b =
  match a, b with
  | X, v | v, X -> Some v
  | Zero, Zero -> Some Zero
  | One, One -> Some One
  | Zero, One | One, Zero -> None

let lnot = function Zero -> One | One -> Zero | X -> X

let land3 a b =
  match a, b with
  | Zero, _ | _, Zero -> Zero
  | One, One -> One
  | (One | X), _ -> X

let lor3 a b =
  match a, b with
  | One, _ | _, One -> One
  | Zero, Zero -> Zero
  | (Zero | X), _ -> X

let lxor3 a b =
  match a, b with
  | X, _ | _, X -> X
  | Zero, Zero | One, One -> Zero
  | Zero, One | One, Zero -> One

let eval k ins =
  let fold f init = Array.fold_left f init ins in
  match k with
  | Gate.Buff -> ins.(0)
  | Gate.Not -> lnot ins.(0)
  | Gate.And -> fold land3 One
  | Gate.Nand -> lnot (fold land3 One)
  | Gate.Or -> fold lor3 Zero
  | Gate.Nor -> lnot (fold lor3 Zero)
  | Gate.Xor -> fold lxor3 Zero
  | Gate.Xnor -> lnot (fold lxor3 Zero)
  | Gate.Input | Gate.Dff -> invalid_arg "Logic3.eval: not a combinational gate"

(* Pre-image with minimal commitment: produce the required output while
   leaving as many inputs X as the gate semantics allow. For AND/OR
   families a single controlling value suffices for the controlled
   output; the uncontrolled output needs all inputs at the
   non-controlling value. XOR/XNOR need every input concrete. *)
let preimage k arity out =
  let all v = Array.make arity v in
  let one_hot v rest =
    let a = Array.make arity rest in
    a.(0) <- v;
    a
  in
  let res =
    match k, out with
    | (Gate.Buff | Gate.Not), X -> Some (all X)
    | Gate.Buff, v -> Some (all v)
    | Gate.Not, v -> Some (all (lnot v))
    | (Gate.And | Gate.Nand | Gate.Or | Gate.Nor | Gate.Xor | Gate.Xnor), X ->
      Some (all X)
    | Gate.And, One -> Some (all One)
    | Gate.And, Zero -> Some (one_hot Zero X)
    | Gate.Nand, Zero -> Some (all One)
    | Gate.Nand, One -> Some (one_hot Zero X)
    | Gate.Or, Zero -> Some (all Zero)
    | Gate.Or, One -> Some (one_hot One X)
    | Gate.Nor, One -> Some (all Zero)
    | Gate.Nor, Zero -> Some (one_hot One X)
    | Gate.Xor, Zero -> Some (all Zero)
    | Gate.Xor, One -> Some (one_hot One Zero)
    | Gate.Xnor, One -> Some (all Zero)
    | Gate.Xnor, Zero -> Some (one_hot One Zero)
    | (Gate.Input | Gate.Dff), _ ->
      invalid_arg "Logic3.preimage: not a combinational gate"
  in
  match res with
  | Some ins when equal (eval k ins) out || equal out X -> Some ins
  | Some _ | None -> None

let to_char = function Zero -> '0' | One -> '1' | X -> 'x'

let pp ppf v = Format.pp_print_char ppf (to_char v)
