(** Three-valued logic (0, 1, X) for initial-state computation.

    Recomputing the reset state of a retimed circuit (paper Sec. 5,
    ref [16]) moves register values forward through gates — always
    possible — and backward through gates — possible only when a
    pre-image exists; X marks the unknown/don't-care outcome, which in
    hardware is supplied by the scan chain's global initialisation. *)

type t = Zero | One | X

val of_bool : bool -> t

val to_bool : t -> bool option

val equal : t -> t -> bool

val compatible : t -> t -> bool
(** Values that could denote the same wire: X is compatible with
    everything. *)

val meet : t -> t -> t option
(** Greatest lower bound in the information order: [meet Zero One] is
    [None], [meet X v] is [Some v]. *)

val eval : Ppet_netlist.Gate.kind -> t array -> t
(** Three-valued gate evaluation with controlling-value shortcuts:
    [eval And [|Zero; X|]] is [Zero]. Raises [Invalid_argument] for
    [Input]/[Dff] like {!Gate.eval}. *)

val preimage : Ppet_netlist.Gate.kind -> int -> t -> t array option
(** [preimage k arity out] finds input values whose {!eval} is exactly
    [out], committing to as few concrete bits as possible; [None] when no
    pre-image exists (never happens for the supported gates but callers
    should not rely on that). *)

val pp : Format.formatter -> t -> unit

val to_char : t -> char
(** '0', '1' or 'x'. *)
