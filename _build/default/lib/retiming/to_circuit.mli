(** Materialise a retiming graph back into a gate-level netlist.

    The collapsed graph carries registers per input pin, so a flip-flop
    shared by several readers appears on several edges; emission undoes
    the duplication where the initial values allow: out-edges of the same
    driver share one register chain when their init lists agree
    prefix-wise (X merging with anything), so a round trip
    [of_circuit |> circuit_of] restores the original register count for
    untouched graphs.

    Because netlists cannot express unknown reset values, the emitted
    flip-flop initial states are returned alongside; feed them back to
    [Rgraph.of_circuit ~init] for 3-valued co-simulation, or treat X as
    "scan chain will initialise this bit" in hardware. *)

type emitted = {
  circuit : Ppet_netlist.Circuit.t;
  register_inits : (string * Logic3.t) list;
      (** emitted DFF name -> initial value *)
}

val circuit_of : ?title:string -> Rgraph.t -> emitted
(** Gate vertices keep their names; new register chains are named
    ["<driver>__r<k>"]. Primary outputs keep their driving vertex's name
    when the host edge has no registers, and end the register chain
    otherwise (the PO is then the last register's name... which is the
    chain name). Raises [Invalid_argument] on graphs whose invariants
    fail ({!Rgraph.check_invariants}). *)

val init_fn : emitted -> int -> Logic3.t
(** Lookup usable as [Rgraph.of_circuit ~init] for the emitted circuit
    (by node id; non-register ids map to X). *)
