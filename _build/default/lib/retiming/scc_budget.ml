module Tarjan = Ppet_digraph.Tarjan
module Netgraph = Ppet_digraph.Netgraph
module Circuit = Ppet_netlist.Circuit
module Gate = Ppet_netlist.Gate

type t = {
  graph : Netgraph.t;
  result : Tarjan.result;
  loop : bool array;
  dff_count : int array;
}

let create c g =
  if Netgraph.n_nodes g <> Circuit.size c then
    invalid_arg "Scc_budget.create: graph does not match circuit";
  let result = Tarjan.run g in
  let loop =
    Array.init result.Tarjan.count (fun comp ->
        not (Tarjan.is_trivial result g comp))
  in
  let dff_count = Array.make result.Tarjan.count 0 in
  Array.iter
    (fun (nd : Circuit.node) ->
      if nd.Circuit.kind = Gate.Dff then begin
        let comp = result.Tarjan.component.(nd.Circuit.id) in
        dff_count.(comp) <- dff_count.(comp) + 1
      end)
    c.Circuit.nodes;
  { graph = g; result; loop; dff_count }

let scc t = t.result

let n_components t = t.result.Tarjan.count

let is_loop t comp = t.loop.(comp)

let registers t comp = t.dff_count.(comp)

let dffs_on_scc t =
  let total = ref 0 in
  Array.iteri
    (fun comp count -> if t.loop.(comp) then total := !total + count)
    t.dff_count;
  !total

let net_scc t e =
  match Tarjan.net_internal t.result t.graph e with
  | Some comp when t.loop.(comp) -> Some comp
  | Some _ | None -> None

let cuts_by_scc t cut_nets =
  let hist = Array.make t.result.Tarjan.count 0 in
  List.iter
    (fun e ->
      match net_scc t e with
      | Some comp -> hist.(comp) <- hist.(comp) + 1
      | None -> ())
    cut_nets;
  hist

let mux_excess t ~cuts_on_scc =
  let total = ref 0 in
  Array.iteri
    (fun comp chi ->
      if t.loop.(comp) then total := !total + max 0 (chi - t.dff_count.(comp)))
    cuts_on_scc;
  !total

let coverable t ~cuts_on_scc ~cuts_total =
  let on_scc = Array.fold_left ( + ) 0 cuts_on_scc in
  let covered_in_loops = ref 0 in
  Array.iteri
    (fun comp chi ->
      if t.loop.(comp) then
        covered_in_loops := !covered_in_loops + min chi t.dff_count.(comp))
    cuts_on_scc;
  (cuts_total - on_scc) + !covered_in_loops
