(** Per-SCC register budgets for legal retiming (paper Eq. 6).

    On a circuit loop, retiming cannot change the number of registers
    (Eq. 2), so the number of cut nets chi inside a strongly connected
    component is bounded by its register count f if every cut is to
    receive a functional register; the paper relaxes this to
    [chi <= beta * f] and prices the excess [max 0 (chi - f)] as
    multiplexed A_CELLs (Sec. 2.3). This module computes the static side
    of that accounting over the partition-view graph. *)

type t

val create : Ppet_netlist.Circuit.t -> Ppet_digraph.Netgraph.t -> t
(** The graph must be [To_graph.partition_view] of the circuit (vertex
    ids = node ids). *)

val scc : t -> Ppet_digraph.Tarjan.result

val n_components : t -> int

val is_loop : t -> int -> bool
(** Whether the component contains a cycle (non-trivial SCC). *)

val registers : t -> int -> int
(** f(component) = flip-flop vertices inside it. *)

val dffs_on_scc : t -> int
(** Total flip-flops sitting on loops — the "DFFs on SCC" column of
    Tables 10/11. *)

val net_scc : t -> int -> int option
(** [net_scc t e] is [Some c] when net [e] is internal to looping
    component [c] (its cut is budget-restricted), [None] otherwise. *)

val cuts_by_scc : t -> int list -> int array
(** Histogram of the given cut nets over components; nets not internal
    to a loop are not counted. *)

val coverable : t -> cuts_on_scc:int array -> cuts_total:int -> int
(** Number of cut nets that legal retiming can equip with an existing
    functional register: all cuts outside loops plus
    [min chi f] inside each loop. *)

val mux_excess : t -> cuts_on_scc:int array -> int
(** Sum over loops of [max 0 (chi - f)] — cut nets needing the
    multiplexed A_CELL of Fig. 3(c). *)
