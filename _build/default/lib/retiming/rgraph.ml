module Gate = Ppet_netlist.Gate
module Circuit = Ppet_netlist.Circuit

type edge = {
  tail : int;
  head : int;
  mutable weight : int;
  mutable inits : Logic3.t list;
}

type vertex_kind =
  | Vpi of string
  | Vgate of Gate.kind * string
  | Vhost

type t = {
  kinds : vertex_kind array;
  edges : edge array;
  out_edges : int array array;
  in_edges : int array array;
  host : int;
}

(* Every all-DFF cycle (a ring of flip-flops with no combinational gate)
   needs one representative flip-flop "anchored" as a buffer vertex so the
   collapse terminates; walk the functional graph dff -> dff-fanin with
   the usual white/gray/black colouring. *)
let find_anchors (c : Circuit.t) =
  let n = Circuit.size c in
  let colour = Array.make n 0 (* 0 white, 1 gray, 2 black *) in
  let anchored = Array.make n false in
  let node_kind id = (Circuit.node c id).Circuit.kind in
  let fanin id = (Circuit.node c id).Circuit.fanins.(0) in
  let rec walk id trail =
    if node_kind id <> Gate.Dff || colour.(id) = 2 then
      List.iter (fun v -> colour.(v) <- 2) trail
    else if colour.(id) = 1 then begin
      anchored.(id) <- true;
      List.iter (fun v -> colour.(v) <- 2) trail;
      colour.(id) <- 2
    end
    else begin
      colour.(id) <- 1;
      walk (fanin id) (id :: trail)
    end
  in
  for id = 0 to n - 1 do
    if node_kind id = Gate.Dff && colour.(id) = 0 then walk id []
  done;
  anchored

let of_circuit ?(init = fun _ -> Logic3.Zero) (c : Circuit.t) =
  let n = Circuit.size c in
  let anchored = find_anchors c in
  let vertex_of = Array.make n (-1) in
  let kinds = ref [] in
  let n_vertices = ref 0 in
  let add_vertex k =
    kinds := k :: !kinds;
    incr n_vertices;
    !n_vertices - 1
  in
  Array.iter
    (fun (nd : Circuit.node) ->
      match nd.Circuit.kind with
      | Gate.Input -> vertex_of.(nd.Circuit.id) <- add_vertex (Vpi nd.Circuit.name)
      | Gate.Dff ->
        if anchored.(nd.Circuit.id) then
          vertex_of.(nd.Circuit.id) <-
            add_vertex (Vgate (Gate.Buff, nd.Circuit.name))
      | Gate.Buff | Gate.Not | Gate.And | Gate.Nand | Gate.Or | Gate.Nor
      | Gate.Xor | Gate.Xnor ->
        vertex_of.(nd.Circuit.id) <-
          add_vertex (Vgate (nd.Circuit.kind, nd.Circuit.name)))
    c.Circuit.nodes;
  let host = add_vertex Vhost in
  let kinds = Array.of_list (List.rev !kinds) in
  (* Walk a fan-in chain back through flip-flops, accumulating register
     count and initial values (tail side first). *)
  let walk_chain start =
    let rec go cur w vals =
      let nd = Circuit.node c cur in
      if nd.Circuit.kind = Gate.Dff then begin
        let w = w + 1 and vals = init cur :: vals in
        if anchored.(cur) then (vertex_of.(cur), w, vals)
        else go nd.Circuit.fanins.(0) w vals
      end
      else (vertex_of.(cur), w, vals)
    in
    go start 0 []
  in
  let edges = ref [] in
  let n_edges = ref 0 in
  let add_edge tail head weight inits =
    edges := { tail; head; weight; inits } :: !edges;
    incr n_edges
  in
  Array.iter
    (fun (nd : Circuit.node) ->
      match nd.Circuit.kind with
      | Gate.Input -> ()
      | Gate.Dff ->
        if anchored.(nd.Circuit.id) then begin
          (* incoming edge of the anchor buffer: the chain behind the
             anchor's own register *)
          let tail, w, vals = walk_chain nd.Circuit.fanins.(0) in
          add_edge tail vertex_of.(nd.Circuit.id) w vals
        end
      | Gate.Buff | Gate.Not | Gate.And | Gate.Nand | Gate.Or | Gate.Nor
      | Gate.Xor | Gate.Xnor ->
        Array.iter
          (fun f ->
            let tail, w, vals = walk_chain f in
            add_edge tail vertex_of.(nd.Circuit.id) w vals)
          nd.Circuit.fanins)
    c.Circuit.nodes;
  Array.iter
    (fun po ->
      let tail, w, vals = walk_chain po in
      add_edge tail host w vals)
    c.Circuit.outputs;
  Array.iter
    (fun pi -> add_edge host vertex_of.(pi) 0 [])
    c.Circuit.inputs;
  let edges = Array.of_list (List.rev !edges) in
  let nv = Array.length kinds in
  let out_cnt = Array.make nv 0 and in_cnt = Array.make nv 0 in
  Array.iter
    (fun e ->
      out_cnt.(e.tail) <- out_cnt.(e.tail) + 1;
      in_cnt.(e.head) <- in_cnt.(e.head) + 1)
    edges;
  let out_edges = Array.init nv (fun v -> Array.make out_cnt.(v) 0) in
  let in_edges = Array.init nv (fun v -> Array.make in_cnt.(v) 0) in
  let ofill = Array.make nv 0 and ifill = Array.make nv 0 in
  Array.iteri
    (fun i e ->
      out_edges.(e.tail).(ofill.(e.tail)) <- i;
      ofill.(e.tail) <- ofill.(e.tail) + 1;
      in_edges.(e.head).(ifill.(e.head)) <- i;
      ifill.(e.head) <- ifill.(e.head) + 1)
    edges;
  { kinds; edges; out_edges; in_edges; host }

let n_vertices g = Array.length g.kinds

let n_registers g = Array.fold_left (fun acc e -> acc + e.weight) 0 g.edges

let copy g =
  {
    g with
    edges =
      Array.map (fun e -> { e with weight = e.weight; inits = e.inits }) g.edges;
  }

let vertex_name g v =
  match g.kinds.(v) with
  | Vpi name -> name
  | Vgate (_, name) -> name
  | Vhost -> "<host>"

let rec last_exn = function
  | [] -> invalid_arg "Rgraph: empty init list on weighted edge"
  | [ x ] -> x
  | _ :: tl -> last_exn tl

let remove_last l =
  match List.rev l with
  | [] -> []
  | _ :: tl -> List.rev tl

let simulate g ~inputs ~cycles =
  (* run on a private copy: the caller's initial values are not consumed *)
  let g = copy g in
  let nv = n_vertices g in
  let outputs = Array.make (max cycles 0) [] in
  for cycle = 0 to cycles - 1 do
    let value = Array.make nv Logic3.X in
    let state = Array.make nv 0 (* 0 fresh, 1 in progress, 2 done *) in
    let rec eval_vertex v =
      match state.(v) with
      | 2 -> value.(v)
      | 1 -> invalid_arg "Rgraph.simulate: combinational cycle"
      | _ ->
        state.(v) <- 1;
        let r =
          match g.kinds.(v) with
          | Vpi name -> inputs ~cycle name
          | Vhost -> Logic3.X
          | Vgate (k, _) ->
            let pins =
              Array.map
                (fun ei ->
                  let e = g.edges.(ei) in
                  if e.weight = 0 then eval_vertex e.tail
                  else last_exn e.inits)
                g.in_edges.(v)
            in
            Logic3.eval k pins
        in
        state.(v) <- 2;
        value.(v) <- r;
        r
    in
    let po_values =
      Array.to_list
        (Array.map
           (fun ei ->
             let e = g.edges.(ei) in
             let v =
               if e.weight = 0 then eval_vertex e.tail else last_exn e.inits
             in
             (vertex_name g e.tail, v))
           g.in_edges.(g.host))
    in
    outputs.(cycle) <- po_values;
    (* Evaluate every weighted edge's tail BEFORE any register shifts:
       a lazy evaluation during the shift loop would read registers that
       have already advanced to the next cycle. *)
    Array.iter
      (fun e ->
        if e.weight > 0 then
          match g.kinds.(e.tail) with
          | Vhost -> ()
          | Vpi _ | Vgate _ -> ignore (eval_vertex e.tail))
      g.edges;
    (* shift registers at the cycle boundary *)
    Array.iter
      (fun e ->
        if e.weight > 0 then begin
          let tail_value =
            match g.kinds.(e.tail) with
            | Vhost -> Logic3.X
            | Vpi _ | Vgate _ -> value.(e.tail)
          in
          e.inits <- tail_value :: remove_last e.inits
        end)
      g.edges
  done;
  outputs

let check_invariants g =
  let problem = ref None in
  let fail fmt = Printf.ksprintf (fun s -> if !problem = None then problem := Some s) fmt in
  Array.iteri
    (fun i e ->
      if e.weight < 0 then fail "edge %d: negative weight" i;
      if List.length e.inits <> e.weight then
        fail "edge %d: %d inits for weight %d" i (List.length e.inits) e.weight;
      if e.tail < 0 || e.tail >= n_vertices g then fail "edge %d: bad tail" i;
      if e.head < 0 || e.head >= n_vertices g then fail "edge %d: bad head" i)
    g.edges;
  Array.iteri
    (fun v k ->
      match k with
      | Vgate (kind, name) ->
        let pins = Array.length g.in_edges.(v) in
        if not (Gate.arity_ok kind pins) then
          fail "vertex %s: %s with %d pins" name (Gate.name kind) pins
      | Vpi name ->
        if Array.length g.in_edges.(v) <> 1 then
          fail "primary input %s: expected exactly the host edge" name
      | Vhost -> ())
    g.kinds;
  match !problem with None -> Ok () | Some msg -> Error msg
