lib/retiming/scc_budget.mli: Ppet_digraph Ppet_netlist
