lib/retiming/to_circuit.ml: Array Hashtbl List Logic3 Ppet_netlist Printf Rgraph
