lib/retiming/to_circuit.mli: Logic3 Ppet_netlist Rgraph
