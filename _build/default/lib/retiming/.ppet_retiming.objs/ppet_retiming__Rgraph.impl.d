lib/retiming/rgraph.ml: Array List Logic3 Ppet_netlist Printf
