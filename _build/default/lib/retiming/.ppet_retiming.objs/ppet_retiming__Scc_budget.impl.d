lib/retiming/scc_budget.ml: Array List Ppet_digraph Ppet_netlist
