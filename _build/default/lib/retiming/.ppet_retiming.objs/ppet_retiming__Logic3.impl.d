lib/retiming/logic3.ml: Array Format Ppet_netlist
