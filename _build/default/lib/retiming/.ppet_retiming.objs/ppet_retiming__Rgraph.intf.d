lib/retiming/rgraph.mli: Logic3 Ppet_netlist
