lib/retiming/logic3.mli: Format Ppet_netlist
