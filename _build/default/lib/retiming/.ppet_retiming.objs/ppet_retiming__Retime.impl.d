lib/retiming/retime.ml: Array List Logic3 Queue Rgraph
