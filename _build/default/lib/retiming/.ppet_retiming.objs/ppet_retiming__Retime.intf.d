lib/retiming/retime.mli: Rgraph
