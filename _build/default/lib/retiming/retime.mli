(** Legal retiming (paper Sec. 2.2, after Leiserson & Saxe).

    A retiming is an integer lag [rho] per combinational vertex (primary
    inputs and the host are pinned at 0: the paper's rho maps C to Z).
    Edge [e = u -> v] gets the new weight
    [w_rho e = weight e + rho v - rho u] (Eq. 1); legality demands
    [w_rho e >= 0] everywhere (Eq. 3), and cycles keep their register
    count automatically (Eq. 2).

    [solve] finds a legal retiming meeting per-edge minimum register
    requirements by solving the difference-constraint system
    [rho u - rho v <= weight e - require e] with Bellman–Ford;
    infeasibility is reported as the set of vertices on some
    over-constrained cycle — exactly the loops whose cut count exceeds
    their register count (chi > f), which the cost model then prices as
    multiplexed A_CELLs. *)

type outcome =
  | Feasible of int array      (** rho per vertex; pinned vertices at 0 *)
  | Infeasible of int list     (** vertices of a negative-weight cycle *)

val solve : Rgraph.t -> require:(int -> int) -> outcome
(** [solve g ~require] with [require e >= 0] the minimum number of
    registers wanted on edge [e] after retiming. Use [require = fun _ -> 0]
    to merely re-check legality of the identity. *)

val retimed_weight : Rgraph.t -> int array -> int -> int
(** [retimed_weight g rho e] is Eq. 1 for edge [e]. *)

val is_legal : Rgraph.t -> int array -> bool
(** All retimed weights non-negative and pinned vertices at lag 0. *)

val apply : Rgraph.t -> int array -> Rgraph.t
(** Rebuild the graph with retimed weights, moving register initial
    values along by elementary retiming steps: a forward move across a
    gate computes the new value with {!Logic3.eval}; a backward move
    justifies it with {!Logic3.preimage} and degrades to X when fanout
    values disagree. Moves that cannot be ordered constructively fall
    back to X initial values (in hardware the scan chain supplies
    those). Raises [Invalid_argument] when [rho] is not legal. *)

val total_registers_after : Rgraph.t -> int array -> int
(** Per-pin register count after retiming (cheap, does not apply). *)
