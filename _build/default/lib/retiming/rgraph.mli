(** Collapsed retiming graph in the Leiserson–Saxe style (paper Sec. 2.2).

    Vertices are the primary inputs, the combinational gates, and one
    {e host} vertex standing for the environment; flip-flops disappear
    into integer edge weights ([weight e] = number of registers between
    the tail's output and the head's input pin). Each register carries a
    three-valued initial value, tail side first, so a retiming can move
    reset states along with the registers.

    Edges are per input pin: a gate reading two signals has two incoming
    edges, and a fanout of k produces k edges (the multi-pin sharing of
    the physical register file is an area concern handled by the cost
    model, not here). *)

type edge = {
  tail : int;
  head : int;
  mutable weight : int;
  mutable inits : Logic3.t list;  (** length [weight], tail side first *)
}

type vertex_kind =
  | Vpi of string    (** primary input with its signal name *)
  | Vgate of Ppet_netlist.Gate.kind * string
  | Vhost

type t = {
  kinds : vertex_kind array;
  edges : edge array;
  out_edges : int array array;  (** vertex -> edge indexes (tail here) *)
  in_edges : int array array;   (** vertex -> edge indexes (head here), in
                                    fan-in pin order for gate vertices *)
  host : int;
}

val of_circuit : ?init:(int -> Logic3.t) -> Ppet_netlist.Circuit.t -> t
(** Collapse DFF chains into weighted edges. [init] gives the initial
    value of each DFF by node id (default: all [Zero], the customary
    ISCAS89 reset). Primary outputs become zero-weight edges into the
    host; the host drives every primary input with a zero-weight edge.
    Isolated flip-flop self-chains are preserved through their reader
    pins. *)

val n_vertices : t -> int

val n_registers : t -> int
(** Total edge weight. Because edges are per input pin, a flip-flop read
    by k pins contributes k — an upper bound on physical registers. *)

val copy : t -> t
(** Deep copy (weights and init lists are per-copy mutable). *)

val vertex_name : t -> int -> string

val simulate : t -> inputs:(cycle:int -> string -> Logic3.t) -> cycles:int ->
  (string * Logic3.t) list array
(** Cycle-accurate 3-valued simulation (non-destructive: runs on an
    internal copy). Returns, for each cycle, the primary-output values
    (name = driving vertex name). Registers start at their [inits]; gate
    evaluation is combinational within a cycle; registers shift at the
    cycle boundary. Raises [Invalid_argument] if the zero-weight
    subgraph is cyclic (no legal circuit produces that). *)

val check_invariants : t -> (unit, string) result
(** Structural sanity: init-list lengths match weights, pin counts match
    gate arities, weights non-negative. *)
