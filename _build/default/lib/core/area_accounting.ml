module Circuit = Ppet_netlist.Circuit
module Scc_budget = Ppet_retiming.Scc_budget
module Acell = Ppet_bist.Acell
module Cbit = Ppet_bist.Cbit

type breakdown = {
  cuts_total : int;
  cuts_on_scc : int;
  retimable : int;
  mux_excess : int;
  dffs_total : int;
  dffs_on_scc : int;
  circuit_area : float;
  feedback_overhead : float;
  area_with_retiming : float;
  area_without_retiming : float;
  ratio_with : float;
  ratio_without : float;
  saving : float;
  area_full_utilization : float;
  ratio_full_utilization : float;
  saving_full_utilization : float;
}

let compute c sb ~cut_nets ~partition_iotas =
  let cuts_total = List.length cut_nets in
  let hist = Scc_budget.cuts_by_scc sb cut_nets in
  let cuts_on_scc = Array.fold_left ( + ) 0 hist in
  let retimable = Scc_budget.coverable sb ~cuts_on_scc:hist ~cuts_total in
  let mux_excess = Scc_budget.mux_excess sb ~cuts_on_scc:hist in
  let feedback_overhead =
    10.0
    *. List.fold_left
         (fun acc iota ->
           if iota <= 0 then acc
           else acc +. Cbit.feedback_overhead (min 32 (max 1 iota)))
         0.0 partition_iotas
  in
  let area_with_retiming =
    (float_of_int retimable *. Acell.area_units Acell.Converted)
    +. (float_of_int mux_excess *. Acell.area_units Acell.Fresh_with_mux)
    +. feedback_overhead
  in
  let area_without_retiming =
    (float_of_int cuts_total *. Acell.area_units Acell.Fresh_with_mux)
    +. feedback_overhead
  in
  let area_full_utilization =
    (float_of_int cuts_total *. Acell.area_units Acell.Converted)
    +. feedback_overhead
  in
  let circuit_area = Circuit.area c in
  let ratio a = 100.0 *. a /. (circuit_area +. a) in
  let ratio_with = ratio area_with_retiming in
  let ratio_without = ratio area_without_retiming in
  let ratio_full_utilization = ratio area_full_utilization in
  {
    cuts_total;
    cuts_on_scc;
    retimable;
    mux_excess;
    dffs_total = Array.length (Circuit.dffs c);
    dffs_on_scc = Scc_budget.dffs_on_scc sb;
    circuit_area;
    feedback_overhead;
    area_with_retiming;
    area_without_retiming;
    ratio_with;
    ratio_without;
    saving = ratio_without -. ratio_with;
    area_full_utilization;
    ratio_full_utilization;
    saving_full_utilization = ratio_without -. ratio_full_utilization;
  }

let pp ppf b =
  Format.fprintf ppf
    "@[<v>cuts: %d total, %d on SCCs (%d retimable, %d need MUX cells)@,\
     flip-flops: %d total, %d on SCCs@,\
     CBIT area: %.0f units with retiming, %.0f without (overhead %.0f)@,\
     ACBIT/ATotal: %.1f%% vs %.1f%% -> %.1f points saved@]"
    b.cuts_total b.cuts_on_scc b.retimable b.mux_excess b.dffs_total
    b.dffs_on_scc b.area_with_retiming b.area_without_retiming
    b.feedback_overhead b.ratio_with b.ratio_without b.saving
