(** Merced parameters (paper Sec. 4.1).

    The published settings are [b = 1], [min_visit = 20], [alpha = 4],
    [delta = 0.01], [beta = 50] (relaxed so [Assign_CBIT] is
    unrestricted), and input constraints [l_k] of 16 (Table 10) or 24
    (Table 11). *)

type t = {
  capacity : float;       (** b — net capacity in Saturate_Network *)
  min_visit : int;        (** sampling adequacy threshold *)
  alpha : float;          (** congestion exponent *)
  delta : float;          (** flow quantum per shortest-path tree *)
  beta : int;             (** Eq. 6 loop-cut relaxation factor *)
  l_k : int;              (** input constraint / CBIT length *)
  seed : int64;           (** randomness of the flow injection *)
  max_iterations : int;   (** safety bound on flow-injection rounds *)
  max_merge_candidates : int;
      (** Assign_CBIT candidate scan cap per step (quality/speed knob) *)
}

val default : t
(** Paper settings with [l_k = 16]. *)

val with_lk : int -> t
(** Paper settings at another input constraint. *)

val validate : t -> (unit, string) result

val pp : Format.formatter -> t -> unit
