module Netgraph = Ppet_digraph.Netgraph
module Pipeline = Ppet_bist.Pipeline

type t = {
  phase_of : int array;
  phases : int;
  adjacency : (int * int) list;
}

let compute (r : Merced.result) =
  let n = List.length r.Merced.assignment.Assign.partitions in
  let part_of = r.Merced.assignment.Assign.partition_of in
  let adj = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let a = part_of.(Netgraph.net_src r.Merced.graph e) in
      Array.iter
        (fun sink ->
          let b = part_of.(sink) in
          if a <> b then
            Hashtbl.replace adj (min a b, max a b) ())
        (Netgraph.net_sinks r.Merced.graph e))
    r.Merced.assignment.Assign.cut_nets;
  let adjacency = Hashtbl.fold (fun k () acc -> k :: acc) adj [] in
  let adjacency = List.sort compare adjacency in
  let neighbours = Array.make n [] in
  List.iter
    (fun (a, b) ->
      neighbours.(a) <- b :: neighbours.(a);
      neighbours.(b) <- a :: neighbours.(b))
    adjacency;
  (* greedy colouring, highest degree first *)
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun a b ->
      compare
        (List.length neighbours.(b), a)
        (List.length neighbours.(a), b))
    order;
  let phase_of = Array.make n (-1) in
  Array.iter
    (fun v ->
      let used = List.filter_map (fun w ->
          if phase_of.(w) >= 0 then Some phase_of.(w) else None)
          neighbours.(v)
      in
      let rec first_free c = if List.mem c used then first_free (c + 1) else c in
      phase_of.(v) <- first_free 0)
    order;
  let phases = Array.fold_left (fun acc p -> max acc (p + 1)) 1 phase_of in
  { phase_of; phases; adjacency }

let schedule (r : Merced.result) =
  let phasing = compute r in
  let widths =
    List.map
      (fun (p : Assign.partition) -> max 1 (min 32 p.Assign.input_count))
      r.Merced.assignment.Assign.partitions
  in
  Pipeline.make ~phases:phasing.phases ~widths:[ widths ] ()

let pp ppf t =
  Format.fprintf ppf
    "@[<v>%d partitions, %d adjacencies -> %d test phase(s)@,phases: %a@]"
    (Array.length t.phase_of)
    (List.length t.adjacency) t.phases
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " ")
       Format.pp_print_int)
    (Array.to_list t.phase_of)
