lib/core/baseline_annealing.ml: Array Assign Baseline_random List Params Partition_state Ppet_digraph
