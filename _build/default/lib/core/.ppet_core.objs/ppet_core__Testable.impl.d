lib/core/testable.ml: Array Assign Hashtbl List Merced Ppet_bist Ppet_digraph Ppet_netlist Printf String
