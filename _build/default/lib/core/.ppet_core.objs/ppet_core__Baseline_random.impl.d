lib/core/baseline_random.ml: Array Assign Hashtbl List Params Ppet_digraph Ppet_netlist Queue
