lib/core/assign.mli: Cluster Params Ppet_digraph Ppet_netlist
