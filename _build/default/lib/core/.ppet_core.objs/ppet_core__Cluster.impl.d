lib/core/cluster.ml: Array Flow Hashtbl List Params Ppet_digraph Ppet_netlist Ppet_retiming Queue
