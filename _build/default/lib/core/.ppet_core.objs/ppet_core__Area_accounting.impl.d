lib/core/area_accounting.ml: Array Format List Ppet_bist Ppet_netlist Ppet_retiming
