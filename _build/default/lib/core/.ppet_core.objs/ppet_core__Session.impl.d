lib/core/session.ml: Array Hashtbl Int64 List Ppet_bist Ppet_digraph Ppet_netlist Ppet_parallel Printf Testable
