lib/core/session.ml: Array Hashtbl Int64 List Ppet_bist Ppet_digraph Ppet_netlist Printf Testable
