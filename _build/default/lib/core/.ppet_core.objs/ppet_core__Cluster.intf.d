lib/core/cluster.mli: Flow Params Ppet_digraph Ppet_netlist Ppet_retiming
