lib/core/merced.ml: Area_accounting Array Assign Cluster Cost Flow Hashtbl List Logs Params Ppet_digraph Ppet_netlist Ppet_retiming Sys
