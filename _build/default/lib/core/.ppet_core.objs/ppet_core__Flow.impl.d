lib/core/flow.ml: Array Hashtbl List Params Ppet_digraph
