lib/core/session.mli: Ppet_bist Testable
