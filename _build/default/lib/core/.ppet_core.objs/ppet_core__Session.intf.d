lib/core/session.mli: Ppet_bist Ppet_parallel Testable
