lib/core/baseline_fm.mli: Assign Params Ppet_digraph Ppet_netlist
