lib/core/report.ml: Area_accounting Assign Buffer Cluster Flow List Merced Params Ppet_netlist Printf String
