lib/core/partition_state.mli: Assign Params Ppet_digraph Ppet_netlist
