lib/core/area_accounting.mli: Format Ppet_netlist Ppet_retiming
