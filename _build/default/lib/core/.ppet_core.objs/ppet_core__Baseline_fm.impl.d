lib/core/baseline_fm.ml: Array Assign Baseline_random Hashtbl List Params Partition_state Ppet_digraph
