lib/core/phasing.mli: Format Merced Ppet_bist
