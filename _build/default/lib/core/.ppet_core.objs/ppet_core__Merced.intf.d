lib/core/merced.mli: Area_accounting Assign Cluster Flow Logs Params Ppet_digraph Ppet_netlist Ppet_retiming
