lib/core/cost.mli:
