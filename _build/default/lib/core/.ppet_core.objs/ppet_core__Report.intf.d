lib/core/report.mli: Merced
