lib/core/baseline_random.mli: Assign Params Ppet_digraph Ppet_netlist
