lib/core/cost.ml: Array List Ppet_bist
