lib/core/partition_state.ml: Array Assign Cluster Hashtbl List Params Ppet_digraph Ppet_netlist
