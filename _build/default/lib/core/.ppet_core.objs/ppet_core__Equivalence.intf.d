lib/core/equivalence.mli: Ppet_netlist Ppet_retiming
