lib/core/phasing.ml: Array Assign Format Hashtbl List Merced Ppet_bist Ppet_digraph
