lib/core/flow.mli: Params Ppet_digraph
