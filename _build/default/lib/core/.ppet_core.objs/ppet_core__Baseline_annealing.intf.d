lib/core/baseline_annealing.mli: Assign Params Ppet_digraph Ppet_netlist
