lib/core/testable.mli: Merced Ppet_netlist
