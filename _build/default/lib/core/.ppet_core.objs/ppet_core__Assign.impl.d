lib/core/assign.ml: Array Cluster Hashtbl List Params Ppet_digraph Ppet_netlist
