(** Text and CSV rendering of Merced results — the rows of Tables 10/11
    (partition results) and Table 12 (area comparison). *)

val table10_header : string

val table10_row : Merced.result -> string
(** Circuit, DFFs, DFFs on SCC, cut nets on SCC, nets cut, CPU time. *)

val table12_header : string

val table12_row : l16:Merced.result -> l24:Merced.result option -> string
(** ACBIT/ATotal with/without retiming at l_k = 16 and (optionally) 24;
    the paper prints 0 for circuits whose l_k = 24 run makes no internal
    cut, which [None] reproduces for circuits outside Table 11. *)

val summary : Merced.result -> string
(** Multi-line human summary of one run. *)

val csv_header : string

val csv_row : Merced.result -> string
(** Machine-readable full record, one line. *)

val bench_json : name:string -> metrics:(string * float) list -> string
(** Flat JSON object ["name" + float metrics] — the format of the
    BENCH_*.json perf baselines the bench harness emits (e.g. the fault
    engine's ns/fault-pattern and speedup-vs-seed numbers), so future
    changes can diff against a recorded baseline. *)
