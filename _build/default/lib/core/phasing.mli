(** Test-phase assignment for the PPET pipeline (paper Fig. 1a).

    During self test a CBIT cannot generate patterns and compress
    responses at the same instant for the same neighbouring segments
    unless the roles alternate: when partition A's responses feed the
    CBIT that generates for partition B, A and B must be tested in
    different phases (the CBIT is in PSA mode for A's phase and TPG mode
    for B's). That is a colouring of the partition adjacency graph; the
    classic linear pipeline needs exactly 2 colours (the paper's
    odd/even arrangement), and cyclic partition structures of odd length
    need 3.

    Total testing time becomes [phases x 2^(dominant width)] plus the
    scan overhead, which {!Ppet_bist.Pipeline} models. *)

type t = {
  phase_of : int array;   (** partition index -> phase in [0, phases) *)
  phases : int;
  adjacency : (int * int) list;  (** partition pairs sharing a CBIT *)
}

val compute : Merced.result -> t
(** Build the partition adjacency from the cut nets (driver partition ->
    sink partition) and colour it greedily in descending-degree order.
    Greedy colouring is within one colour of optimal on the near-linear
    structures PPET produces. *)

val schedule : Merced.result -> Ppet_bist.Pipeline.schedule
(** The full testing-time model for a Merced result: per-partition CBIT
    widths from the partition input counts (clamped to 32), phase count
    from {!compute}. *)

val pp : Format.formatter -> t -> unit
