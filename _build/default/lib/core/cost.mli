(** CBIT cost model — Table 1 and the objective of Eq. 4.

    Re-exports the hardware numbers from {!Ppet_bist.Cbit} and prices a
    set of partitions: each partition of input count iota gets the
    smallest catalogue CBIT type that fits, and the objective
    Sigma = sum p_k n_k is what [Assign_CBIT] minimises. *)

type cbit_choice = {
  label : string;    (** d1..d6 *)
  length : int;
  area_dff : float;  (** p_k, in DFF units *)
}

val catalogue : cbit_choice list
(** The six types of Table 1, ascending length. *)

val choose : int -> cbit_choice
(** Smallest catalogue type with length >= the given input count.
    Raises [Invalid_argument] above 32. *)

val sigma : int list -> float
(** Eq. 4 objective for the given partition input counts: total CBIT
    area in DFF units under catalogue pricing. *)

val sigma_units : int list -> float
(** Same in absolute area units (DFF = 10). *)

val testing_time_cycles : int list -> float
(** [2^max] — the pipelined testing time of the partitioning, in clock
    cycles (Fig. 1b). 0 widths mean nothing to test: 0 cycles. *)

val bitwise_cost : int -> float
(** sigma_k = p_k / l_k for any length (Fig. 4's y-axis). *)
