(** Baseline 1: random seeded growth.

    Clusters are grown by randomized breadth-first accretion from random
    seeds, accepting a vertex whenever the cluster's input count stays
    within l_k — no congestion information at all. Comparing Merced
    against this isolates the value of the multicommodity-flow distance
    function (ablation A in DESIGN.md). *)

val run :
  Ppet_netlist.Circuit.t ->
  Ppet_digraph.Netgraph.t ->
  Params.t ->
  Ppet_digraph.Prng.t ->
  Assign.t
(** Same result shape as [Assign.run]; [merges] reports 0. Every
    partition satisfies the input constraint unless a single vertex
    exceeds it by itself. *)
