(** Bounded sequential equivalence checking between two circuits.

    Used to validate every transformation in this library: retiming
    (ref [16]'s functional-equivalence claim), netlist emission, and
    test-hardware insertion in normal mode. Two flavours:

    - {!check_bool}: word-parallel boolean co-simulation from the all-zero
      reset state on random input streams — 62 independent random streams
      per cycle of work, strongest for transformations that preserve reset
      behaviour exactly;
    - {!check_3valued}: 3-valued co-simulation honouring unknown initial
      values (X compatible with anything) — needed after retiming, where
      some moved registers are legitimately unknown until scanned.

    Both are bounded (they prove nothing beyond the simulated horizon)
    but all transformations here shift no I/O latency, so a mismatch
    shows up within a few cycles of the divergence point. *)

type verdict = {
  equivalent : bool;
  cycles_run : int;
  first_mismatch : (int * string) option;
      (** (cycle, output name in the left circuit) *)
}

val check_bool :
  ?cycles:int ->
  ?seed:int64 ->
  ?force_right:(string * bool) list ->
  Ppet_netlist.Circuit.t ->
  Ppet_netlist.Circuit.t ->
  verdict
(** [check_bool left right] drives both circuits with the same random
    words on the inputs they share by name; inputs existing only in
    [right] (e.g. PPET control pins) are held at the value given in
    [force_right] (default 0/false). Outputs are compared positionally
    (both circuits must declare the same number of primary outputs, else
    [Invalid_argument]). Default 32 cycles. *)

val check_3valued :
  ?cycles:int ->
  ?seed:int64 ->
  ?init_left:(int -> Ppet_retiming.Logic3.t) ->
  ?init_right:(int -> Ppet_retiming.Logic3.t) ->
  Ppet_netlist.Circuit.t ->
  Ppet_netlist.Circuit.t ->
  verdict
(** 3-valued compatibility from the given initial states (default all
    zero): a mismatch needs both sides concrete and different. Default 16
    cycles (the 3-valued interpreter is slower). *)
