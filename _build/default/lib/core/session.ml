module Circuit = Ppet_netlist.Circuit
module Gate = Ppet_netlist.Gate
module Fault = Ppet_bist.Fault
module Simulator = Ppet_bist.Simulator
module Gf2_poly = Ppet_bist.Gf2_poly

type report = {
  n_faults : int;
  n_detected : int;
  coverage : float;
  burst_cycles : int;
  truncated : bool;
  scan_bits : int;
  undetected : Fault.t list;
}

let word_mask = max_int
let lanes_per_pass = Ppet_netlist.Gate.bits_per_word - 1 (* lane 0 = good *)

(* Bit-sliced Galois MISR: state.(i) holds bit i of every lane's register.
   All lanes share the taps; each lane evolves on its own MSB — which is
   exactly what the word-level xor expresses. *)
module Sliced_misr = struct
  type t = { poly : int; width : int; state : int array }

  let create ~width = { poly = Gf2_poly.primitive width; width; state = Array.make width 0 }

  let absorb t data =
    (* data.(i) = bit-sliced input bit i (missing bits = 0) *)
    let out = t.state.(t.width - 1) in
    let next = Array.make t.width 0 in
    for i = t.width - 1 downto 1 do
      next.(i) <- t.state.(i - 1) lxor (if t.poly land (1 lsl i) <> 0 then out else 0)
    done;
    next.(0) <- out (* tap 0 always set in a primitive polynomial *);
    for i = 0 to t.width - 1 do
      t.state.(i) <- (next.(i) lxor data.(i)) land word_mask
    done

  let state t = Array.copy t.state
end

(* Remap a fault whose site uses original node ids onto the testable
   netlist by signal name. *)
let remap_fault original testable f =
  let name id = (Circuit.node original id).Circuit.name in
  let resolve id =
    match Circuit.find testable (name id) with
    | id' -> id'
    | exception Not_found ->
      invalid_arg
        (Printf.sprintf "Session.run: signal %S not in the testable netlist"
           (name id))
  in
  match f.Fault.site with
  | Fault.Output id -> { f with Fault.site = Fault.Output (resolve id) }
  | Fault.Input_pin (id, pin) ->
    { f with Fault.site = Fault.Input_pin (resolve id, pin) }

let run ?(max_burst = 1024) ?faults ?(observe_pos = true) ?pool (t : Testable.t) =
  let original = t.Testable.original in
  let testable = t.Testable.circuit in
  let fault_list =
    match faults with
    | Some fs -> fs
    | None -> Fault.collapse original (Fault.all_of_circuit original)
  in
  let sim = Simulator.create testable in
  let n = Circuit.size testable in
  let dffs = Circuit.dffs testable in
  let wmax =
    List.fold_left
      (fun acc (g : Testable.cbit_group) -> max acc g.Testable.width)
      1 t.Testable.groups
  in
  let full = if wmax >= 30 then max_int else 1 lsl wmax in
  (* the PSA-everywhere session has data-dependent patterns, so running
     longer than 2^wmax keeps adding new stimulus; truncation is only
     flagged relative to the exhaustive count *)
  let burst = max_burst in
  let cell_ids =
    List.map (fun cl -> Circuit.find testable cl.Testable.q_name) t.Testable.cells
  in
  (* control pins *)
  let pin name = Circuit.find testable name in
  let test_en = pin t.Testable.test_en
  and fb_en = pin t.Testable.fb_en
  and psa_en = pin t.Testable.psa_en
  and scan_in = pin t.Testable.scan_in in
  (* deterministic functional input stimulus, shared across passes *)
  let rng_master = Ppet_digraph.Prng.create 0x5E55L in
  let stimulus =
    Array.init burst (fun _ ->
        Array.map
          (fun _ ->
            Int64.to_int
              (Int64.logand
                 (Ppet_digraph.Prng.next_int64 rng_master)
                 (Int64.of_int word_mask)))
          original.Circuit.inputs)
  in
  let passes =
    (* single pass over the fault list: open a fresh lane batch every
       [lanes_per_pass] faults (the last one ragged) *)
    let rev = ref [] and cur = ref [] and k = ref 0 in
    List.iter
      (fun f ->
        if !k = lanes_per_pass then begin
          rev := List.rev !cur :: !rev;
          cur := [];
          k := 0
        end;
        cur := f :: !cur;
        incr k)
      fault_list;
    if !cur <> [] then rev := List.rev !cur :: !rev;
    Array.of_list (List.rev !rev)
  in
  (* One pass = one bit-sliced burst over up to [lanes_per_pass] faults.
     Passes are independent (they share only read-only structures), so
     they shard across the pool's domains; the per-pass hit lists are
     merged in pass order, keeping the report identical to the serial
     run. *)
  let run_pass batch =
      (* per-node output masks and per-pin masks for this pass *)
      let out_clear = Array.make n 0 and out_set = Array.make n 0 in
      let pin_masks = Hashtbl.create 16 in
      List.iteri
        (fun lane_minus_1 f ->
          let lane_bit = 1 lsl (lane_minus_1 + 1) in
          let f' = remap_fault original testable f in
          match f'.Fault.site with
          | Fault.Output id ->
            if f'.Fault.stuck_at then out_set.(id) <- out_set.(id) lor lane_bit
            else out_clear.(id) <- out_clear.(id) lor lane_bit
          | Fault.Input_pin (id, p) ->
            let c0, s0 =
              try Hashtbl.find pin_masks (id, p) with Not_found -> (0, 0)
            in
            if f'.Fault.stuck_at then Hashtbl.replace pin_masks (id, p) (c0, s0 lor lane_bit)
            else Hashtbl.replace pin_masks (id, p) (c0 lor lane_bit, s0))
        batch;
      let apply_output id v =
        (v land lnot out_clear.(id)) lor out_set.(id) land word_mask
      in
      (* state: all zero, then load the CBIT seeds in parallel (stands for
         the global scan initialisation, validated at gate level by the
         test suite) *)
      let state = Array.make n 0 in
      List.iter
        (fun (g : Testable.cbit_group) ->
          match g.Testable.cell_names with
          | first :: _ -> state.(Circuit.find testable first) <- word_mask
          | [] -> ())
        t.Testable.groups;
      let observer = Sliced_misr.create ~width:16 in
      let values = Array.make n 0 in
      for cycle = 0 to burst - 1 do
        Array.fill values 0 n 0;
        (* sources first, with their stuck overrides applied before any
           gate reads them *)
        Array.iteri
          (fun i p -> values.(p) <- apply_output p stimulus.(cycle).(i))
          original.Circuit.inputs;
        values.(test_en) <- word_mask;
        values.(fb_en) <- word_mask;
        values.(psa_en) <- word_mask;
        values.(scan_in) <- 0;
        Array.iter (fun d -> values.(d) <- apply_output d state.(d)) dffs;
        (* evaluate with fault injection *)
        Array.iter
          (fun id ->
            let nd = Circuit.node testable id in
            let ins = Array.map (fun f -> values.(f)) nd.Circuit.fanins in
            Array.iteri
              (fun p _ ->
                match Hashtbl.find_opt pin_masks (id, p) with
                | Some (c, s) -> ins.(p) <- ((ins.(p) land lnot c) lor s) land word_mask
                | None -> ())
              ins;
            values.(id) <- apply_output id (Gate.eval_word nd.Circuit.kind ins))
          (Simulator.order sim);
        (* next register states *)
        Array.iter
          (fun d ->
            state.(d) <- apply_output d values.((Circuit.node testable d).Circuit.fanins.(0)))
          dffs;
        if observe_pos then begin
          let data = Array.make 16 0 in
          Array.iteri
            (fun i po -> data.(i mod 16) <- data.(i mod 16) lxor values.(po))
            testable.Circuit.outputs;
          Sliced_misr.absorb observer data
        end
      done;
      (* verdict per lane: any signature bit differing from lane 0 *)
      let diff = ref 0 in
      let fold w =
        (* lanes whose bit differs from bit 0 of w *)
        let good = if w land 1 = 1 then word_mask else 0 in
        diff := !diff lor (w lxor good)
      in
      List.iter (fun id -> fold state.(id)) cell_ids;
      if observe_pos then Array.iter fold (Sliced_misr.state observer);
      List.filteri
        (fun lane_minus_1 _ -> !diff land (1 lsl (lane_minus_1 + 1)) <> 0)
        batch
  in
  let hits = Array.make (Array.length passes) [] in
  (match pool with
   | None -> Array.iteri (fun i batch -> hits.(i) <- run_pass batch) passes
   | Some p ->
     let jobs = Ppet_parallel.Domain_pool.jobs p in
     let n = Array.length passes in
     Ppet_parallel.Domain_pool.run p (fun w ->
         let lo, hi = Ppet_parallel.Domain_pool.chunk ~jobs ~n w in
         for i = lo to hi - 1 do
           hits.(i) <- run_pass passes.(i)
         done));
  let detected = Hashtbl.create (List.length fault_list) in
  Array.iter (List.iter (fun f -> Hashtbl.replace detected f ())) hits;
  let n_faults = List.length fault_list in
  let n_detected = Hashtbl.length detected in
  {
    n_faults;
    n_detected;
    coverage =
      (if n_faults = 0 then 1.0
       else float_of_int n_detected /. float_of_int n_faults);
    burst_cycles = burst;
    truncated = burst < full;
    scan_bits = Testable.scan_length t;
    undetected =
      List.filter (fun f -> not (Hashtbl.mem detected f)) fault_list;
  }
