(** Test-hardware insertion: convert a partitioned design into the
    PPET-testable netlist — the output Merced exists to produce
    (paper Sec. 1, Figs. 1 and 3).

    Every cut net receives an A_CELL-style register cell; the cells
    feeding one partition form a CBIT whose feedback polynomial comes
    from the primitive table, and all CBITs are linked into one scan
    chain. Three added control inputs select the mode and one carries
    the serial scan data:

    - [TEST_EN] = 0: normal operation. Converted cells (cut nets already
      driven by a flip-flop) latch their functional data exactly as
      before; fresh cells are bypassed combinationally through their
      multiplexer (Fig. 3c), so normal-mode behaviour and timing are
      bit-identical to the original circuit.
    - [TEST_EN] = 1, [FB_EN] = 0: scan — the chain shifts [SCAN_IN]
      through every cell (initialisation and signature read-out).
    - [TEST_EN] = 1, [FB_EN] = 1, [PSA_EN] = 0: TPG — each CBIT runs as
      the Galois LFSR of its polynomial, exactly the sequence of
      {!Ppet_bist.Cbit} in [Tpg] mode.
    - [TEST_EN] = 1, [FB_EN] = 1, [PSA_EN] = 1: PSA — each CBIT
      additionally folds in the arriving functional data, i.e. the
      responses of the partition driving it: the dual-mode trick that
      lets one register bank test two segments.

    The gate network per cell is the A_CELL of Fig. 3 realised with the
    netlist's own primitives (the figure's precise mode decoding is not
    published, so the cell here is behaviourally specified as above and
    its measured area is compared against the paper's 1.9/2.3-DFF model
    by the test suite). *)

type cell = {
  net : int;            (** partition-view net id the cell registers *)
  driver : int;         (** original node id driving the cut net *)
  q_name : string;      (** the cell's register in the new netlist *)
  converted : bool;     (** reused functional flip-flop (0.9-DFF case) *)
  group_index : int;    (** CBIT the cell belongs to *)
  bit_index : int;      (** position inside that CBIT, 0 = LSB *)
}

type cbit_group = {
  partition : int;      (** partition this CBIT feeds patterns to *)
  width : int;
  poly : int;           (** feedback polynomial (degree = min width 32) *)
  cell_names : string list;  (** register names, LSB first *)
}

type t = {
  circuit : Ppet_netlist.Circuit.t;   (** the testable netlist *)
  original : Ppet_netlist.Circuit.t;
  cells : cell list;                  (** scan-chain order *)
  groups : cbit_group list;
  test_en : string;
  fb_en : string;
  psa_en : string;
  scan_in : string;
  added_area : float;    (** units: area(testable) - area(original) *)
}

val insert : Merced.result -> t
(** Raises [Invalid_argument] if the result's circuit contains signal
    names clashing with the generated ones (names starting with
    ["PPET_"]). Results with no cut nets return the original circuit
    unchanged apart from the four control inputs. *)

val cell_count : t -> int

val scan_length : t -> int
(** Total register bits on the scan chain. *)

val measured_overhead_per_cell : t -> float
(** [added_area / cells], in area units — compare with the model's
    9 (converted) to 23 (fresh + mux) units. *)
