(** Baseline 3: multi-way Fiduccia–Mattheyses refinement.

    The classic iterative-improvement partitioner adapted to the PPET
    input constraint: starting from a random seeded-growth partition,
    each pass repeatedly moves the unlocked vertex with the best gain
    (cut reduction plus input-constraint penalty relief) to a
    neighbouring cluster, locking it; after the pass the best prefix of
    the move sequence is kept. Passes repeat until one brings no
    improvement. Deterministic given the PRNG that seeds the initial
    partition. *)

type stats = {
  result : Assign.t;
  passes : int;
  moves_applied : int;
}

val run :
  ?max_passes:int ->
  ?lambda:float ->
  Ppet_netlist.Circuit.t ->
  Ppet_digraph.Netgraph.t ->
  Params.t ->
  Ppet_digraph.Prng.t ->
  stats
(** [max_passes] defaults to 8; [lambda] (penalty weight per excess
    input) to 4.0. *)
