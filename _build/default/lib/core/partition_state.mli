(** Incremental state for move-based partitioners (simulated annealing,
    Fiduccia–Mattheyses).

    Tracks, under single-vertex relabellings: the cut-net count, each
    cluster's entering-net count and internal-PI count (so iota is O(1)),
    in O(degree) per move. *)

type t

val build :
  Ppet_netlist.Circuit.t -> Ppet_digraph.Netgraph.t ->
  labels:int array -> n_clusters:int -> t
(** [labels] is consumed by reference: the state owns and mutates it. *)

val n_clusters : t -> int

val label : t -> int -> int

val iota : t -> int -> int
(** Cluster input count: entering nets + internal PIs. *)

val n_cut : t -> int
(** Nets whose source and some sink lie in different clusters. *)

val move : t -> int -> int -> unit
(** [move t v b] relabels vertex [v] to cluster [b], updating all
    incremental quantities. A no-op when [v] is already in [b]. *)

val penalty : t -> l_k:int -> int
(** Sum over clusters of [max 0 (iota - l_k)] — the input-constraint
    violation the soft-cost partitioners minimise. *)

val move_gain : t -> l_k:int -> lambda:float -> int -> int -> float
(** [move_gain t ~l_k ~lambda v b]: decrease of
    [cuts + lambda * penalty] if [v] moved to [b] (positive = better).
    Implemented as move/measure/undo, O(degree). *)

val labels_snapshot : t -> int array
(** Copy of the current labelling. *)

val to_assign :
  Ppet_netlist.Circuit.t -> Ppet_digraph.Netgraph.t -> Params.t -> t ->
  Assign.t
(** Harvest the current labelling as a partitioning result (empty
    clusters dropped, iotas recomputed, cut nets listed). *)
