(** Whole-chip PPET self-test session, executed on the synthesized
    testable netlist with parallel fault simulation.

    This is the experiment the paper argues for but never runs at gate
    level: every CBIT operates concurrently in dual mode (PSA — its
    register bank both steps its feedback polynomial and folds in the
    arriving responses of the partition it follows), so one burst tests
    all segments at once. Detection is judged exactly as hardware would:
    a fault is caught iff some CBIT signature — or the virtual MISR
    observing the primary outputs — differs from the fault-free machine
    after the burst.

    Fault simulation is bit-sliced: lane 0 carries the good machine and
    each of the remaining word lanes a different faulty machine, so one
    simulation pass evaluates 61 faults. Coverage here is {e measured},
    not inferred: data-dependent PSA patterns forfeit the per-segment
    pseudo-exhaustive guarantee (validated separately by
    {!Ppet_bist.Pet}), and faults whose effects never reach a CBIT or a
    primary output are structurally undetectable by this architecture. *)

type report = {
  n_faults : int;
  n_detected : int;
  coverage : float;          (** detected / faults, 0..1 *)
  burst_cycles : int;        (** cycles actually simulated *)
  truncated : bool;          (** burst shorter than 2^(widest CBIT) *)
  scan_bits : int;
  undetected : Ppet_bist.Fault.t list;
      (** sites named in the ORIGINAL circuit's node ids *)
}

val run :
  ?max_burst:int ->
  ?faults:Ppet_bist.Fault.t list ->
  ?observe_pos:bool ->
  ?pool:Ppet_parallel.Domain_pool.t ->
  Testable.t ->
  report
(** [run t] injects each fault (default: the collapsed stuck-at list of
    the original circuit, sites in original node ids) into the testable
    netlist and measures signature detection over a burst of
    [max_burst] cycles (default 1024; [truncated] flags bursts shorter
    than the exhaustive [2 ^ widest CBIT] count).
    [observe_pos] (default true) adds a 16-bit virtual MISR on the
    primary outputs, standing for the output CBIT of the final pipe
    stage. Raises [Invalid_argument] if a fault site's signal does not
    exist in the testable netlist.

    [?pool] shards the independent 61-fault simulation passes across
    the pool's domains; per-pass results are merged in pass order, so
    the report is identical at any job count. *)
