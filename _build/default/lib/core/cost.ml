module Cbit = Ppet_bist.Cbit

type cbit_choice = {
  label : string;
  length : int;
  area_dff : float;
}

let catalogue =
  Array.to_list
    (Array.map
       (fun (r : Cbit.cost_row) ->
         {
           label = r.Cbit.label;
           length = r.Cbit.length;
           area_dff = r.Cbit.area_per_dff;
         })
       Cbit.cost_table)

let choose iota =
  if iota > 32 then
    invalid_arg "Cost.choose: no CBIT type beyond 32 bits (partition further)";
  let iota = max iota 1 in
  match List.find_opt (fun ch -> ch.length >= iota) catalogue with
  | Some ch -> ch
  | None -> invalid_arg "Cost.choose: unreachable"

let sigma iotas =
  List.fold_left (fun acc i -> acc +. (choose i).area_dff) 0.0 iotas

let sigma_units iotas = 10.0 *. sigma iotas

let testing_time_cycles iotas =
  match iotas with
  | [] -> 0.0
  | _ ->
    let widest = List.fold_left (fun acc i -> max acc (choose i).length) 1 iotas in
    Cbit.testing_time widest

let bitwise_cost l = Cbit.area_per_dff l /. float_of_int l
