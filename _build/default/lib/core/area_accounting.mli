(** The Table 12 area model: CBIT hardware with vs without retiming.

    With retiming, every cut net that a legal retiming can cover with an
    existing functional flip-flop costs only the three extra A_CELL gates
    (0.9 DFF); cut nets in loops beyond the loop's register count need
    the full multiplexed cell (2.3 DFF). Without retiming, the original
    flip-flops stay put, so {e every} cut net needs the multiplexed cell.
    Both variants pay the CBIT feedback-network overhead once per
    partition. Ratios are reported against the total (circuit + CBIT)
    area, as in Table 12. *)

type breakdown = {
  cuts_total : int;            (** "nets cut" column *)
  cuts_on_scc : int;           (** "cut nets on SCC" column *)
  retimable : int;             (** cuts coverable by moved flip-flops *)
  mux_excess : int;            (** cuts needing the 2.3-DFF cell *)
  dffs_total : int;
  dffs_on_scc : int;
  circuit_area : float;        (** units *)
  feedback_overhead : float;   (** units, sum over partitions *)
  area_with_retiming : float;  (** units *)
  area_without_retiming : float;
  ratio_with : float;          (** ACBIT/ATotal, percent *)
  ratio_without : float;       (** percent *)
  saving : float;              (** percentage-point reduction *)
  area_full_utilization : float;
      (** units, under the paper's Sec. 4.2 working assumption that
          "retiming can fully utilize the existing DFFs": every cut net
          priced at the converted-cell cost, no multiplexed cells. The
          strict per-loop budget (Eq. 2/6) proves this optimistic —
          pigeonhole on chi vs f — but it is what Table 12's w/-retiming
          column arithmetically corresponds to, so both are reported. *)
  ratio_full_utilization : float;  (** percent *)
  saving_full_utilization : float; (** percentage points — the paper's
                                       "average 20%" headline metric *)
}

val compute :
  Ppet_netlist.Circuit.t ->
  Ppet_retiming.Scc_budget.t ->
  cut_nets:int list ->
  partition_iotas:int list ->
  breakdown

val pp : Format.formatter -> breakdown -> unit
