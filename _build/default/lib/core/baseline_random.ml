module Netgraph = Ppet_digraph.Netgraph
module Components = Ppet_digraph.Components
module Circuit = Ppet_netlist.Circuit
module Gate = Ppet_netlist.Gate
module Prng = Ppet_digraph.Prng

(* Incremental cluster state: entering nets (source outside, some sink
   inside) and internal PI count give iota in O(1). *)
type grow = {
  member : bool array;
  entering : (int, unit) Hashtbl.t;
  mutable n_pis : int;
  mutable size : int;
}

let iota g = Hashtbl.length g.entering + g.n_pis

(* iota if [v] joined, without committing. *)
let trial_iota gr c graph v =
  let gain = ref 0 in
  if (Circuit.node c v).Circuit.kind = Gate.Input then incr gain;
  Array.iter
    (fun e -> if Hashtbl.mem gr.entering e then decr gain)
    (Netgraph.out_nets graph v);
  Array.iter
    (fun e ->
      let src = Netgraph.net_src graph e in
      if (not gr.member.(src)) && src <> v && not (Hashtbl.mem gr.entering e)
      then incr gain)
    (Netgraph.in_nets graph v);
  iota gr + !gain

let commit gr graph c v =
  gr.member.(v) <- true;
  gr.size <- gr.size + 1;
  if (Circuit.node c v).Circuit.kind = Gate.Input then gr.n_pis <- gr.n_pis + 1;
  Array.iter
    (fun e -> Hashtbl.remove gr.entering e)
    (Netgraph.out_nets graph v);
  Array.iter
    (fun e ->
      let src = Netgraph.net_src graph e in
      if not gr.member.(src) then Hashtbl.replace gr.entering e ())
    (Netgraph.in_nets graph v)

let run c g (p : Params.t) rng =
  let n = Netgraph.n_nodes g in
  let assigned = Array.make n (-1) in
  let order = Array.init n (fun v -> v) in
  Prng.shuffle rng order;
  let partitions = ref [] in
  let n_parts = ref 0 in
  let member_scratch = Array.make n false in
  Array.iter
    (fun seed ->
      if assigned.(seed) < 0 then begin
        let gr =
          {
            member = member_scratch;
            entering = Hashtbl.create 16;
            n_pis = 0;
            size = 0;
          }
        in
        let members = ref [] in
        let add v =
          commit gr g c v;
          assigned.(v) <- !n_parts;
          members := v :: !members
        in
        add seed;
        (* randomized BFS accretion *)
        let frontier = Queue.create () in
        let push_neighbours v =
          Array.iter (fun w -> Queue.add w frontier) (Netgraph.successors g v);
          Array.iter (fun w -> Queue.add w frontier) (Netgraph.predecessors g v)
        in
        push_neighbours seed;
        let stop = ref false in
        while not (!stop || Queue.is_empty frontier) do
          let v = Queue.pop frontier in
          if assigned.(v) < 0 then begin
            if trial_iota gr c g v <= p.Params.l_k then begin
              add v;
              push_neighbours v
            end
          end;
          if gr.size > 0 && iota gr >= p.Params.l_k then stop := true
        done;
        (* reset the scratch membership for the next cluster *)
        List.iter (fun v -> member_scratch.(v) <- false) !members;
        let vertices = Array.of_list !members in
        Array.sort compare vertices;
        partitions :=
          {
            Assign.vertices;
            input_count = iota gr;
            merged_from = 1;
            oversize = iota gr > p.Params.l_k;
            locked = false;
          }
          :: !partitions;
        incr n_parts
      end)
    order;
  let partitions =
    List.sort
      (fun a b -> compare b.Assign.input_count a.Assign.input_count)
      !partitions
  in
  let partition_of = Array.make n (-1) in
  List.iteri
    (fun i pt -> Array.iter (fun v -> partition_of.(v) <- i) pt.Assign.vertices)
    partitions;
  let cut_nets = Components.cut_nets g partition_of in
  { Assign.partitions; partition_of; cut_nets; merges = 0 }
