(** Baseline 2: simulated annealing for input-constrained partitioning —
    the authors' earlier approach (ref [4], Liou/Lin/Cheng/Liu,
    CICC 1994), which the flow-based Merced superseded.

    The state assigns every vertex to one of the clusters of an initial
    random partition; a move re-labels a random vertex with the cluster
    of one of its graph neighbours. The energy is
    [cut nets + lambda * sum over clusters of max 0 (iota - l_k)], so the
    input constraint is a soft penalty that hardens as lambda grows with
    the cooling. Intended for the small and mid-size circuits of the
    ablation bench: each move is O(degree), but convergence needs many
    moves. *)

type stats = {
  result : Assign.t;
  moves_tried : int;
  moves_accepted : int;
  final_energy : float;
}

val run :
  ?initial_temp:float ->
  ?cooling:float ->
  ?moves_per_temp:int ->
  ?min_temp:float ->
  Ppet_netlist.Circuit.t ->
  Ppet_digraph.Netgraph.t ->
  Params.t ->
  Ppet_digraph.Prng.t ->
  stats
(** Defaults: initial_temp 5.0, cooling 0.9, moves_per_temp = 8 |V|,
    min_temp 0.05. Oversize clusters may survive when the penalty could
    not be annealed away; they are marked as such in the result. *)
