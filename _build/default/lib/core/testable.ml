module Netgraph = Ppet_digraph.Netgraph
module Circuit = Ppet_netlist.Circuit
module Gate = Ppet_netlist.Gate
module Gf2_poly = Ppet_bist.Gf2_poly

type cell = {
  net : int;
  driver : int;
  q_name : string;
  converted : bool;
  group_index : int;
  bit_index : int;
}

type cbit_group = {
  partition : int;
  width : int;
  poly : int;
  cell_names : string list;
}

type t = {
  circuit : Circuit.t;
  original : Circuit.t;
  cells : cell list;
  groups : cbit_group list;
  test_en : string;
  fb_en : string;
  psa_en : string;
  scan_in : string;
  added_area : float;
}

let prefix = "PPET_"

let test_en_name = prefix ^ "TEST_EN"
let fb_en_name = prefix ^ "FB_EN"
let psa_en_name = prefix ^ "PSA_EN"
let scan_in_name = prefix ^ "SCAN_IN"
let ntest_name = prefix ^ "NTEST"
let nfb_name = prefix ^ "NFB"

(* Group the cut nets into CBITs: a cell joins the CBIT of the lowest-
   numbered partition its net enters. *)
let plan_groups (r : Merced.result) =
  let g = r.Merced.graph in
  let part_of = r.Merced.assignment.Assign.partition_of in
  let by_partition = Hashtbl.create 16 in
  List.iter
    (fun net ->
      let src = Netgraph.net_src g net in
      let home = part_of.(src) in
      let target = ref max_int in
      Array.iter
        (fun sink ->
          let p = part_of.(sink) in
          if p <> home && p < !target then target := p)
        (Netgraph.net_sinks g net);
      let p = if !target = max_int then home else !target in
      let cur = try Hashtbl.find by_partition p with Not_found -> [] in
      Hashtbl.replace by_partition p (net :: cur))
    r.Merced.assignment.Assign.cut_nets;
  Hashtbl.fold (fun p nets acc -> (p, List.sort compare nets) :: acc) by_partition []
  |> List.sort compare

let insert (r : Merced.result) =
  let c = r.Merced.circuit in
  let g = r.Merced.graph in
  Array.iter
    (fun (nd : Circuit.node) ->
      if
        String.length nd.Circuit.name >= String.length prefix
        && String.sub nd.Circuit.name 0 (String.length prefix) = prefix
      then
        invalid_arg
          (Printf.sprintf "Testable.insert: signal %S clashes with the PPET_ namespace"
             nd.Circuit.name))
    c.Circuit.nodes;
  let groups_plan = plan_groups r in
  let gate_seq = ref 0 in
  let fresh_gate () =
    incr gate_seq;
    Printf.sprintf "%sG%d" prefix !gate_seq
  in
  let fresh_q =
    let q_seq = ref 0 in
    fun () ->
      incr q_seq;
      Printf.sprintf "%sQ%d" prefix !q_seq
  in
  (* plan the cells: names first, wiring later *)
  let cells = ref [] in
  let groups = ref [] in
  List.iteri
    (fun group_index (partition, nets) ->
      let cell_list =
        List.mapi
          (fun bit_index net ->
            let driver = Netgraph.net_src g net in
            let converted = (Circuit.node c driver).Circuit.kind = Gate.Dff in
            let q_name =
              if converted then (Circuit.node c driver).Circuit.name
              else fresh_q ()
            in
            { net; driver; q_name; converted; group_index; bit_index })
          nets
      in
      let width = List.length cell_list in
      groups :=
        {
          partition;
          width;
          poly = Gf2_poly.primitive (max 1 (min width 32));
          cell_names = List.map (fun cl -> cl.q_name) cell_list;
        }
        :: !groups;
      cells := cell_list :: !cells)
    groups_plan;
  let groups = List.rev !groups in
  let cells_by_group = List.rev !cells in
  let all_cells = List.concat cells_by_group in
  (* bypass rewiring: fresh cells interpose a mux on their driver *)
  let mux_of_driver = Hashtbl.create 16 in
  List.iter
    (fun cl ->
      if not cl.converted then
        Hashtbl.replace mux_of_driver cl.driver (fresh_gate ()))
    all_cells;
  let converted_drivers = Hashtbl.create 16 in
  List.iter
    (fun cl -> if cl.converted then Hashtbl.replace converted_drivers cl.driver ())
    all_cells;
  let name_of id = (Circuit.node c id).Circuit.name in
  let rewired id =
    match Hashtbl.find_opt mux_of_driver id with
    | Some mux -> mux
    | None -> name_of id
  in
  let b = Circuit.Builder.create (c.Circuit.title ^ "-testable") in
  (* primary inputs: originals plus the controls *)
  Array.iter (fun pi -> Circuit.Builder.add_input b (name_of pi)) c.Circuit.inputs;
  List.iter (Circuit.Builder.add_input b)
    [ test_en_name; fb_en_name; psa_en_name; scan_in_name ];
  let has_cells = all_cells <> [] in
  if has_cells then begin
    Circuit.Builder.add_gate b ~name:ntest_name ~kind:Gate.Not
      ~fanins:[ test_en_name ];
    Circuit.Builder.add_gate b ~name:nfb_name ~kind:Gate.Not
      ~fanins:[ fb_en_name ]
  end;
  (* original logic, with cut-net readers rerouted through the muxes;
     converted flip-flops are emitted by their cells instead *)
  Array.iter
    (fun (nd : Circuit.node) ->
      match nd.Circuit.kind with
      | Gate.Input -> ()
      | Gate.Dff when Hashtbl.mem converted_drivers nd.Circuit.id -> ()
      | Gate.Dff | Gate.Buff | Gate.Not | Gate.And | Gate.Nand | Gate.Or
      | Gate.Nor | Gate.Xor | Gate.Xnor ->
        Circuit.Builder.add_gate b ~name:nd.Circuit.name ~kind:nd.Circuit.kind
          ~fanins:(List.map rewired (Array.to_list nd.Circuit.fanins)))
    c.Circuit.nodes;
  (* the test cells, group by group, chained for scan *)
  let scan_prev = ref scan_in_name in
  List.iter2
    (fun group cell_list ->
      match cell_list with
      | [] -> ()
      | first :: _ ->
        ignore first;
        let names = Array.of_list group.cell_names in
        let msb = names.(group.width - 1) in
        (* feedback gated by FB_EN, shared across the group *)
        let fb_gated = fresh_gate () in
        Circuit.Builder.add_gate b ~name:fb_gated ~kind:Gate.And
          ~fanins:[ msb; fb_en_name ];
        (* the group's scan entry: previous chain bit, blocked when the
           feedback network is active (TPG/PSA shift in zero) *)
        let scan_gate = fresh_gate () in
        Circuit.Builder.add_gate b ~name:scan_gate ~kind:Gate.And
          ~fanins:[ !scan_prev; nfb_name ];
        let degree = Gf2_poly.degree group.poly in
        List.iter
          (fun cl ->
            let i = cl.bit_index in
            (* functional data arriving at the cell *)
            let d_sig =
              if cl.converted then
                rewired (Circuit.node c cl.driver).Circuit.fanins.(0)
              else name_of cl.driver
            in
            (* test-mode next state *)
            let shift_src = if i = 0 then scan_gate else names.(i - 1) in
            let tap = i < degree && group.poly land (1 lsl i) <> 0 in
            let after_fb =
              if tap then begin
                let x = fresh_gate () in
                Circuit.Builder.add_gate b ~name:x ~kind:Gate.Xor
                  ~fanins:[ shift_src; fb_gated ];
                x
              end
              else shift_src
            in
            let psa_term = fresh_gate () in
            Circuit.Builder.add_gate b ~name:psa_term ~kind:Gate.And
              ~fanins:[ d_sig; psa_en_name ];
            let core = fresh_gate () in
            Circuit.Builder.add_gate b ~name:core ~kind:Gate.Xor
              ~fanins:[ after_fb; psa_term ];
            (* mode selection in front of the register *)
            let normal_path = fresh_gate () in
            Circuit.Builder.add_gate b ~name:normal_path ~kind:Gate.And
              ~fanins:[ d_sig; ntest_name ];
            let test_path = fresh_gate () in
            Circuit.Builder.add_gate b ~name:test_path ~kind:Gate.And
              ~fanins:[ core; test_en_name ];
            let d_in = fresh_gate () in
            Circuit.Builder.add_gate b ~name:d_in ~kind:Gate.Or
              ~fanins:[ normal_path; test_path ];
            Circuit.Builder.add_gate b ~name:cl.q_name ~kind:Gate.Dff
              ~fanins:[ d_in ];
            (* fresh cells bypass through a mux in normal mode (Fig. 3c) *)
            if not cl.converted then begin
              let mux = Hashtbl.find mux_of_driver cl.driver in
              let pass = fresh_gate () in
              Circuit.Builder.add_gate b ~name:pass ~kind:Gate.And
                ~fanins:[ name_of cl.driver; ntest_name ];
              let hold = fresh_gate () in
              Circuit.Builder.add_gate b ~name:hold ~kind:Gate.And
                ~fanins:[ cl.q_name; test_en_name ];
              Circuit.Builder.add_gate b ~name:mux ~kind:Gate.Or
                ~fanins:[ pass; hold ]
            end)
          cell_list;
        scan_prev := msb)
    groups cells_by_group;
  (* primary outputs keep observing the functional signals *)
  Array.iter
    (fun po -> Circuit.Builder.add_output b (name_of po))
    c.Circuit.outputs;
  let circuit = Circuit.Builder.finish b in
  {
    circuit;
    original = c;
    cells = all_cells;
    groups;
    test_en = test_en_name;
    fb_en = fb_en_name;
    psa_en = psa_en_name;
    scan_in = scan_in_name;
    added_area = Circuit.area circuit -. Circuit.area c;
  }

let cell_count t = List.length t.cells

let scan_length = cell_count

let measured_overhead_per_cell t =
  if t.cells = [] then 0.0
  else t.added_area /. float_of_int (List.length t.cells)
