module Netgraph = Ppet_digraph.Netgraph
module Prng = Ppet_digraph.Prng

type stats = {
  result : Assign.t;
  moves_tried : int;
  moves_accepted : int;
  final_energy : float;
}

let run ?(initial_temp = 5.0) ?(cooling = 0.9) ?moves_per_temp
    ?(min_temp = 0.05) c g (p : Params.t) rng =
  let n = Netgraph.n_nodes g in
  let moves_per_temp =
    match moves_per_temp with Some m -> m | None -> 8 * n
  in
  let initial = Baseline_random.run c g p rng in
  let n_clusters = List.length initial.Assign.partitions in
  let labels = Array.copy initial.Assign.partition_of in
  let st = Partition_state.build c g ~labels ~n_clusters in
  let tried = ref 0 and accepted = ref 0 in
  let temp = ref initial_temp in
  while !temp > min_temp do
    (* harden the input-constraint penalty as the system cools *)
    let lambda = 1.0 +. (initial_temp /. !temp) in
    for _ = 1 to moves_per_temp do
      let v = Prng.int rng n in
      let neighbours =
        Array.append (Netgraph.successors g v) (Netgraph.predecessors g v)
      in
      if Array.length neighbours > 0 then begin
        let w = Prng.pick rng neighbours in
        let b = Partition_state.label st w in
        let a = Partition_state.label st v in
        if a <> b then begin
          incr tried;
          let gain = Partition_state.move_gain st ~l_k:p.Params.l_k ~lambda v b in
          let accept =
            gain >= 0.0 || Prng.float rng 1.0 < exp (gain /. !temp)
          in
          if accept then begin
            Partition_state.move st v b;
            incr accepted
          end
        end
      end
    done;
    temp := !temp *. cooling
  done;
  let lambda_final = 1.0 +. (initial_temp /. min_temp) in
  {
    result = Partition_state.to_assign c g p st;
    moves_tried = !tried;
    moves_accepted = !accepted;
    final_energy =
      float_of_int (Partition_state.n_cut st)
      +. (lambda_final *. float_of_int (Partition_state.penalty st ~l_k:p.Params.l_k));
  }
