module Circuit = Ppet_netlist.Circuit
module Simulator = Ppet_bist.Simulator
module Rgraph = Ppet_retiming.Rgraph
module Logic3 = Ppet_retiming.Logic3
module Prng = Ppet_digraph.Prng

type verdict = {
  equivalent : bool;
  cycles_run : int;
  first_mismatch : (int * string) option;
}

let word_mask = max_int

let check_bool ?(cycles = 32) ?(seed = 0xE9L) ?(force_right = []) left right =
  if Array.length left.Circuit.outputs <> Array.length right.Circuit.outputs
  then invalid_arg "Equivalence.check_bool: output counts differ";
  let rng = Prng.create seed in
  let rand_word () = Int64.to_int (Int64.logand (Prng.next_int64 rng) (Int64.of_int word_mask)) in
  let sim_l = Simulator.create left and sim_r = Simulator.create right in
  let dffs_l = Circuit.dffs left and dffs_r = Circuit.dffs right in
  let state_l = ref (Array.make (Array.length dffs_l) 0) in
  let state_r = ref (Array.make (Array.length dffs_r) 0) in
  (* shared inputs by name; right-only inputs forced *)
  let right_forced = Hashtbl.create 8 in
  List.iter
    (fun (n, b) -> Hashtbl.replace right_forced n (if b then word_mask else 0))
    force_right;
  let left_index = Hashtbl.create 16 in
  Array.iteri
    (fun i p -> Hashtbl.replace left_index (Circuit.node left p).Circuit.name i)
    left.Circuit.inputs;
  let mismatch = ref None in
  let cycle = ref 0 in
  while !mismatch = None && !cycle < cycles do
    let pi_l =
      Array.map (fun _ -> rand_word ()) left.Circuit.inputs
    in
    let pi_r =
      Array.map
        (fun p ->
          let name = (Circuit.node right p).Circuit.name in
          match Hashtbl.find_opt right_forced name with
          | Some w -> w
          | None ->
            (match Hashtbl.find_opt left_index name with
             | Some i -> pi_l.(i)
             | None -> 0))
        right.Circuit.inputs
    in
    let next_l, po_l = Simulator.step sim_l ~state:!state_l ~pi:pi_l in
    let next_r, po_r = Simulator.step sim_r ~state:!state_r ~pi:pi_r in
    state_l := next_l;
    state_r := next_r;
    Array.iteri
      (fun k w ->
        if !mismatch = None && w <> po_r.(k) then
          mismatch :=
            Some (!cycle, (Circuit.node left left.Circuit.outputs.(k)).Circuit.name))
      po_l;
    incr cycle
  done;
  { equivalent = !mismatch = None; cycles_run = !cycle; first_mismatch = !mismatch }

let check_3valued ?(cycles = 16) ?(seed = 0xE9L) ?init_left ?init_right left
    right =
  if Array.length left.Circuit.outputs <> Array.length right.Circuit.outputs
  then invalid_arg "Equivalence.check_3valued: output counts differ";
  let rg_l = Rgraph.of_circuit ?init:init_left left in
  let rg_r = Rgraph.of_circuit ?init:init_right right in
  let rng = Prng.create seed in
  let stim = Hashtbl.create 64 in
  let inputs ~cycle name =
    match Hashtbl.find_opt stim (cycle, name) with
    | Some v -> v
    | None ->
      let v = if Prng.bool rng then Logic3.One else Logic3.Zero in
      Hashtbl.replace stim (cycle, name) v;
      v
  in
  let a = Rgraph.simulate rg_l ~inputs ~cycles in
  let b = Rgraph.simulate rg_r ~inputs ~cycles in
  let mismatch = ref None in
  for t = 0 to cycles - 1 do
    List.iteri
      (fun k (name, v0) ->
        let _, v1 = List.nth b.(t) k in
        if !mismatch = None && not (Logic3.compatible v0 v1) then
          mismatch := Some (t, name))
      a.(t)
  done;
  { equivalent = !mismatch = None; cycles_run = cycles; first_mismatch = !mismatch }
