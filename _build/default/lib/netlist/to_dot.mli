(** Graphviz export of circuits and partitionings.

    Produces `dot` source a designer can render to inspect what Merced
    did: gates as boxes, flip-flops as double octagons, primary inputs
    as triangles; an optional vertex labelling draws each cluster as a
    filled subgraph and highlights the cut nets. *)

val circuit : ?title:string -> Circuit.t -> string
(** Plain structural view. *)

val partitioned :
  ?title:string ->
  Circuit.t ->
  cluster_of:(int -> int) ->
  cut_net_drivers:int list ->
  string
(** [partitioned c ~cluster_of ~cut_net_drivers]: vertices grouped into
    Graphviz clusters by [cluster_of] (node id -> cluster id); edges
    leaving a node listed in [cut_net_drivers] are drawn bold red (those
    nets carry the A_CELLs). *)
