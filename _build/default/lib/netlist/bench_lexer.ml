type token =
  | Ident of string
  | Lparen
  | Rparen
  | Comma
  | Equal
  | Eof

type t = {
  file : string;
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable lookahead : token option;
}

let of_string ?(file = "<string>") src =
  { file; src; pos = 0; line = 1; lookahead = None }

let is_ident_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> true
  | '_' | '.' | '[' | ']' | '/' | '$' | '-' -> true
  | _ -> false

let rec skip_blank t =
  if t.pos < String.length t.src then
    match t.src.[t.pos] with
    | ' ' | '\t' | '\r' ->
      t.pos <- t.pos + 1;
      skip_blank t
    | '\n' ->
      t.pos <- t.pos + 1;
      t.line <- t.line + 1;
      skip_blank t
    | '#' ->
      while t.pos < String.length t.src && t.src.[t.pos] <> '\n' do
        t.pos <- t.pos + 1
      done;
      skip_blank t
    | _ -> ()

let lex t =
  skip_blank t;
  if t.pos >= String.length t.src then Eof
  else
    match t.src.[t.pos] with
    | '(' ->
      t.pos <- t.pos + 1;
      Lparen
    | ')' ->
      t.pos <- t.pos + 1;
      Rparen
    | ',' ->
      t.pos <- t.pos + 1;
      Comma
    | '=' ->
      t.pos <- t.pos + 1;
      Equal
    | c when is_ident_char c ->
      let start = t.pos in
      while t.pos < String.length t.src && is_ident_char t.src.[t.pos] do
        t.pos <- t.pos + 1
      done;
      Ident (String.sub t.src start (t.pos - start))
    | c ->
      raise
        (Circuit.Error
           (Printf.sprintf "%s:%d: illegal character %C" t.file t.line c))

let next t =
  match t.lookahead with
  | Some tok ->
    t.lookahead <- None;
    tok
  | None -> lex t

let peek t =
  match t.lookahead with
  | Some tok -> tok
  | None ->
    let tok = lex t in
    t.lookahead <- Some tok;
    tok

let position t =
  skip_blank t;
  Printf.sprintf "%s:%d" t.file t.line
