(** Emit a circuit back to the ISCAS89 [.bench] format.

    [parse_string (to_string c)] reproduces [c] up to node numbering, so
    circuits built programmatically (e.g. by the synthetic generator) can
    be saved and re-read. *)

val to_string : Circuit.t -> string

val to_file : string -> Circuit.t -> unit
