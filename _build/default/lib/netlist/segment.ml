type t = {
  members : int array;
  input_drivers : int array;
  inside_pis : int array;
  observed : int array;
}

let of_members (c : Circuit.t) members =
  let n = Circuit.size c in
  let inside = Array.make n false in
  Array.iter
    (fun id ->
      if id < 0 || id >= n then invalid_arg "Segment.of_members: bad node id";
      if inside.(id) then invalid_arg "Segment.of_members: duplicate node id";
      inside.(id) <- true)
    members;
  let drivers = Hashtbl.create 16 and observed = Hashtbl.create 16 in
  let pis = ref [] in
  Array.iter
    (fun id ->
      let nd = Circuit.node c id in
      if nd.Circuit.kind = Gate.Input then pis := id :: !pis;
      Array.iter
        (fun f -> if not inside.(f) then Hashtbl.replace drivers f ())
        nd.Circuit.fanins;
      let read_outside =
        Array.exists (fun s -> not inside.(s)) c.Circuit.fanouts.(id)
      in
      if read_outside || Circuit.is_po c id then Hashtbl.replace observed id ())
    members;
  let sorted_of_tbl tbl =
    let a = Array.of_seq (Seq.map fst (Hashtbl.to_seq tbl)) in
    Array.sort compare a;
    a
  in
  let members = Array.copy members in
  Array.sort compare members;
  {
    members;
    input_drivers = sorted_of_tbl drivers;
    inside_pis = (let a = Array.of_list !pis in Array.sort compare a; a);
    observed = sorted_of_tbl observed;
  }

let input_count s = Array.length s.input_drivers + Array.length s.inside_pis

let input_signals s = Array.append s.input_drivers s.inside_pis

let mem s id = Array.exists (fun m -> m = id) s.members

let pp c ppf s =
  let names ids =
    String.concat ", "
      (List.map (fun id -> (Circuit.node c id).Circuit.name) (Array.to_list ids))
  in
  Format.fprintf ppf
    "@[<v>segment: %d members, iota=%d@,members: %s@,inputs: %s@,observed: %s@]"
    (Array.length s.members) (input_count s) (names s.members)
    (names (input_signals s))
    (names s.observed)
