type t = {
  title : string;
  n_pi : int;
  n_po : int;
  n_dff : int;
  n_gates : int;
  n_inv : int;
  area : float;
  max_fanin : int;
  depth : int;
}

let of_circuit c =
  let n_dff = ref 0 and n_gates = ref 0 and n_inv = ref 0 and max_fanin = ref 0 in
  Array.iter
    (fun nd ->
      let arity = Array.length nd.Circuit.fanins in
      if arity > !max_fanin then max_fanin := arity;
      match nd.Circuit.kind with
      | Gate.Input -> ()
      | Gate.Dff -> incr n_dff
      | Gate.Not -> incr n_inv
      | Gate.Buff | Gate.And | Gate.Nand | Gate.Or | Gate.Nor | Gate.Xor
      | Gate.Xnor ->
        incr n_gates)
    c.Circuit.nodes;
  let depth = Array.fold_left max 0 (Circuit.levels c) in
  {
    title = c.Circuit.title;
    n_pi = Array.length c.Circuit.inputs;
    n_po = Array.length c.Circuit.outputs;
    n_dff = !n_dff;
    n_gates = !n_gates;
    n_inv = !n_inv;
    area = Circuit.area c;
    max_fanin = !max_fanin;
    depth;
  }

let header =
  Printf.sprintf "%-10s %6s %6s %6s %7s %6s %10s" "Circuit" "PIs" "POs" "DFFs"
    "Gates" "INVs" "Area"

let row s =
  Printf.sprintf "%-10s %6d %6d %6d %7d %6d %10.0f" s.title s.n_pi s.n_po
    s.n_dff s.n_gates s.n_inv s.area

let pp ppf s =
  Format.fprintf ppf
    "%s: %d PI, %d PO, %d DFF, %d gates, %d INV, area %.0f, max fan-in %d, depth %d"
    s.title s.n_pi s.n_po s.n_dff s.n_gates s.n_inv s.area s.max_fanin s.depth
