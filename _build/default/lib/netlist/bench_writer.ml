let to_string (c : Circuit.t) =
  let buf = Buffer.create 4096 in
  Printf.bprintf buf "# %s\n" c.Circuit.title;
  Array.iter
    (fun id ->
      Printf.bprintf buf "INPUT(%s)\n" (Circuit.node c id).Circuit.name)
    c.Circuit.inputs;
  Array.iter
    (fun id ->
      Printf.bprintf buf "OUTPUT(%s)\n" (Circuit.node c id).Circuit.name)
    c.Circuit.outputs;
  Array.iter
    (fun nd ->
      match nd.Circuit.kind with
      | Gate.Input -> ()
      | Gate.Buff | Gate.Not | Gate.And | Gate.Nand | Gate.Or | Gate.Nor
      | Gate.Xor | Gate.Xnor | Gate.Dff ->
        Printf.bprintf buf "%s = %s(%s)\n" nd.Circuit.name
          (Gate.name nd.Circuit.kind)
          (String.concat ", "
             (List.map
                (fun f -> (Circuit.node c f).Circuit.name)
                (Array.to_list nd.Circuit.fanins))))
    c.Circuit.nodes;
  Buffer.contents buf

let to_file path c =
  let oc = open_out path in
  (try output_string oc (to_string c)
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc
