(** The s27 ISCAS89 benchmark circuit, as printed in Fig. 2(a) of the
    paper — the one benchmark small enough to be published in full. Used
    by the worked examples of Sections 3.1-3.2 (Figs. 5-7). *)

val text : string
(** Netlist source in [.bench] format. *)

val circuit : unit -> Circuit.t
(** Freshly parsed circuit (4 PIs, 3 DFFs, 1 PO, 10 gates). *)
