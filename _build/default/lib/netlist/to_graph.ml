module Netgraph = Ppet_digraph.Netgraph

let partition_view (c : Circuit.t) =
  let n = Circuit.size c in
  let g = Netgraph.create n in
  for id = 0 to n - 1 do
    let sinks = c.Circuit.fanouts.(id) in
    if Array.length sinks > 0 then
      ignore (Netgraph.add_net g ~src:id ~sinks:(Array.to_list sinks))
  done;
  Netgraph.freeze g;
  g

let driver_of_net = Netgraph.net_src

let net_of_driver (c : Circuit.t) g =
  let map = Array.make (Circuit.size c) (-1) in
  Netgraph.iter_nets g (fun e ~src ~sinks:_ -> map.(src) <- e);
  map
