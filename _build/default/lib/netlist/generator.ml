module Prng = Ppet_digraph.Prng

type profile = {
  name : string;
  n_pi : int;
  n_dff : int;
  n_gates : int;
  n_inv : int;
  dff_on_scc : int;
  area_target : float option;
}

(* A published signal: its name, combinational depth (for bounding the
   logic depth of the result) and how many readers it has so far (to bias
   fan-in choices toward unconsumed signals). *)
type signal = {
  s_name : string;
  s_depth : int;
  mutable s_uses : int;
}

type vec = { mutable data : signal array; mutable len : int }

let vec_create () = { data = Array.make 16 { s_name = ""; s_depth = 0; s_uses = 0 }; len = 0 }

let vec_push v s =
  if v.len >= Array.length v.data then begin
    let bigger = Array.make (2 * Array.length v.data) s in
    Array.blit v.data 0 bigger 0 v.len;
    v.data <- bigger
  end;
  v.data.(v.len) <- s;
  v.len <- v.len + 1

let vec_get v i = v.data.(i)

let depth_cap = 48

(* Candidate (kind, extra inputs beyond 2, area) choices for non-inverter
   gates; the generator walks this list to keep the running estimated area
   close to the published Table 9 value. *)
let gate_menu =
  [|
    (Gate.Nand, 0, 2.0);
    (Gate.Nor, 0, 2.0);
    (Gate.And, 0, 3.0);
    (Gate.Or, 0, 3.0);
    (Gate.Nand, 1, 3.0);
    (Gate.Nor, 1, 3.0);
    (Gate.Xor, 0, 4.0);
    (Gate.And, 1, 4.0);
    (Gate.Or, 1, 4.0);
    (Gate.Xor, 1, 5.0);
  |]

type state = {
  rng : Prng.t;
  builder : Circuit.Builder.t;
  global : vec;
  unread_pis : signal Queue.t;
      (* real benchmarks read every primary input; gates preferentially
         absorb PIs from this queue until none remain unread *)
  mutable gate_seq : int;
  mutable gates_left : int;
  mutable invs_left : int;
  mutable gate_area_left : float;
  locality : float;
}

let fresh_gate_name st =
  let n = Printf.sprintf "N%d" st.gate_seq in
  st.gate_seq <- st.gate_seq + 1;
  n

(* How far back a local pick may reach. A small window braids the logic
   locally (like real datapaths) instead of weaving an expander that any
   partition must cut everywhere. *)
let local_window = 24

(* Pick a signal, preferring a sliding window of the local pool
   (locality), shallow depths and unconsumed outputs. *)
let pick_signal st ~local =
  let pool, window =
    if local.len > 0 && (st.global.len = 0 || Prng.float st.rng 1.0 < st.locality)
    then (local, min local.len local_window)
    else if st.global.len > 0 then (st.global, st.global.len)
    else (local, local.len)
  in
  let candidate () =
    vec_get pool (pool.len - window + Prng.int st.rng window)
  in
  let best = ref (candidate ()) in
  (* Two extra draws: prefer unused, then shallow. *)
  for _ = 1 to 2 do
    let c = candidate () in
    let better =
      if (c.s_uses = 0) <> (!best.s_uses = 0) then c.s_uses = 0
      else c.s_depth < !best.s_depth
    in
    if better then best := c
  done;
  !best

let gather_fanins st ~local ~forced n =
  let chosen = ref (List.rev forced) in
  let names = Hashtbl.create 4 in
  List.iter (fun s -> Hashtbl.replace names s.s_name ()) forced;
  (* absorb a still-unread primary input now and then *)
  let rec try_pi () =
    match Queue.take_opt st.unread_pis with
    | None -> ()
    | Some pi when pi.s_uses > 0 -> try_pi ()
    | Some pi ->
      if List.length !chosen < n && not (Hashtbl.mem names pi.s_name) then begin
        Hashtbl.replace names pi.s_name ();
        chosen := pi :: !chosen
      end
      else Queue.add pi st.unread_pis
  in
  if Prng.float st.rng 1.0 < 0.35 then try_pi ();
  let attempts = ref 0 in
  while List.length !chosen < n && !attempts < 30 * n do
    incr attempts;
    let s = pick_signal st ~local in
    if s.s_depth < depth_cap && not (Hashtbl.mem names s.s_name) then begin
      Hashtbl.replace names s.s_name ();
      chosen := s :: !chosen
    end
  done;
  (* Tiny pools: relax distinctness (a gate may read a signal twice). *)
  while List.length !chosen < n do
    chosen := pick_signal st ~local :: !chosen
  done;
  List.rev !chosen

(* Create one gate or inverter reading from [local]; returns the published
   signal of its output. [forced] fan-ins are always included. *)
let create_cell st ~local ?(forced = []) ?(allow_inv = true) () =
  let total_left = st.gates_left + st.invs_left in
  let make_inv =
    List.length forced <= 1 && st.invs_left > 0
    && (st.gates_left = 0
        || (allow_inv && Prng.int st.rng total_left < st.invs_left))
  in
  let name = fresh_gate_name st in
  let kind, fanins =
    if make_inv then begin
      st.invs_left <- st.invs_left - 1;
      let fanin =
        match forced with
        | [ s ] -> s
        | [] | _ :: _ :: _ -> pick_signal st ~local
      in
      (Gate.Not, [ fanin ])
    end
    else begin
      let ideal =
        if st.gates_left <= 0 then 2.5
        else st.gate_area_left /. float_of_int st.gates_left
      in
      let target = ideal +. Prng.float st.rng 1.0 -. 0.5 in
      let best = ref gate_menu.(0) in
      let score (_, _, a) = abs_float (a -. target) in
      Array.iter
        (fun cand ->
          if
            score cand < score !best
            || (score cand = score !best && Prng.bool st.rng)
          then best := cand)
        gate_menu;
      let kind, extra, area = !best in
      st.gates_left <- st.gates_left - 1;
      st.gate_area_left <- st.gate_area_left -. area;
      let n = 2 + extra in
      (kind, gather_fanins st ~local ~forced n)
    end
  in
  List.iter (fun s -> s.s_uses <- s.s_uses + 1) fanins;
  Circuit.Builder.add_gate st.builder ~name ~kind
    ~fanins:(List.map (fun s -> s.s_name) fanins);
  let depth =
    1 + List.fold_left (fun acc s -> max acc s.s_depth) 0 fanins
  in
  let out = { s_name = name; s_depth = min depth depth_cap; s_uses = 0 } in
  vec_push local out;
  if Prng.float st.rng 1.0 < 0.15 then vec_push st.global out;
  out

(* Seed a fresh local pool with a few global signals. *)
let seed_local st k =
  let local = vec_create () in
  if st.global.len > 0 then
    for _ = 1 to k do
      vec_push local (vec_get st.global (Prng.int st.rng st.global.len))
    done;
  local

(* Build one feedback group: [qs] are the flip-flop output signals (the
   flip-flops themselves are created by the caller once the data inputs
   chosen here are known). Returns the D-input driver name for each
   flip-flop.

   The group's gate budget is spent on one sub-chain per flip-flop:
   sub-chain i starts at q_i, every gate of it forcibly reads the chain
   carry, and its last gate drives q_{i+1} — so the ring
   q_0 -> chain -> q_1 -> chain -> ... -> q_0 closes and EVERY sub-chain
   gate lies on a directed cycle. Real sequential benchmarks keep most of
   their logic inside such loops (Table 10: nearly all cut nets fall on
   SCCs), which is the structural property this reproduces. *)
let build_scc_group st ~qs ~budget =
  let k = Array.length qs in
  let local = seed_local st 3 in
  (* anchor the group to the rest of the circuit: remember a global seed
     that the first sub-chain gate is forced to read *)
  let anchor = if local.len > 0 then Some (vec_get local 0) else None in
  Array.iter (fun q -> vec_push local q) qs;
  let drivers =
    Array.mapi
      (fun i q ->
        let chain_len = max 1 ((budget + i) / k) in
        let carry = ref q in
        for step = 1 to chain_len do
          if st.gates_left + st.invs_left > 0 then begin
            let forced =
              match anchor with
              | Some seed when i = 0 && step = 1 && st.gates_left > 0 ->
                [ !carry; seed ]
              | Some _ | None -> [ !carry ]
            in
            carry := create_cell st ~local ~forced ()
          end
        done;
        (!carry).s_name)
      qs
  in
  (* the chain grown from q_i feeds q_{i+1}: rotate by one. *)
  Array.init k (fun i -> drivers.((i + k - 1) mod k))

let generate ?(seed = 0x5EEDL) ?(locality = 0.95) p =
  if p.n_pi < 0 || p.n_dff < 0 || p.n_gates < 0 || p.n_inv < 0 then
    invalid_arg "Generator.generate: negative counts";
  if p.dff_on_scc > p.n_dff then
    invalid_arg "Generator.generate: dff_on_scc exceeds n_dff";
  if p.n_pi = 0 && p.n_dff = 0 then
    invalid_arg "Generator.generate: no signal sources";
  let name_hash =
    String.fold_left
      (fun acc ch -> Int64.add (Int64.mul acc 131L) (Int64.of_int (Char.code ch)))
      7L p.name
  in
  let rng = Prng.create (Int64.logxor seed name_hash) in
  let builder = Circuit.Builder.create p.name in
  let comb_area_target =
    match p.area_target with
    | Some a -> a -. (Gate.dff_area *. float_of_int p.n_dff) -. float_of_int p.n_inv
    | None -> 2.5 *. float_of_int p.n_gates
  in
  let st =
    {
      rng;
      builder;
      global = vec_create ();
      unread_pis = Queue.create ();
      gate_seq = 0;
      gates_left = p.n_gates;
      invs_left = p.n_inv;
      gate_area_left = comb_area_target;
      locality;
    }
  in
  for i = 0 to p.n_pi - 1 do
    let name = Printf.sprintf "PI%d" i in
    Circuit.Builder.add_input builder name;
    let s = { s_name = name; s_depth = 0; s_uses = 0 } in
    vec_push st.global s;
    Queue.add s st.unread_pis
  done;
  (* Plan the feedback groups: one large component plus small rings, the
     shape real sequential benchmarks exhibit. *)
  let groups =
    let sizes = ref [] and left = ref p.dff_on_scc in
    if !left >= 10 then begin
      (* real sequential benchmarks concentrate their feedback in one
         dominant SCC; give it 70% of the looping flip-flops *)
      let big = !left * 7 / 10 in
      sizes := [ big ];
      left := !left - big
    end;
    while !left > 0 do
      let s = min !left (1 + Prng.int rng 8) in
      sizes := s :: !sizes;
      left := !left - s
    done;
    !sizes
  in
  let total_steps = p.n_gates + p.n_inv in
  let scc_budget =
    if p.dff_on_scc = 0 || p.n_dff = 0 then 0
    else
      min total_steps
        (int_of_float
           (0.7 *. float_of_int total_steps
            *. float_of_int p.dff_on_scc
            /. float_of_int p.n_dff))
  in
  let dff_seq = ref 0 in
  let fresh_q () =
    let name = Printf.sprintf "R%d" !dff_seq in
    incr dff_seq;
    { s_name = name; s_depth = 0; s_uses = 0 }
  in
  (* Feedback groups first: they read PIs and each other's published
     outputs, never the outputs of groups created later, so each group is
     exactly one SCC. *)
  List.iter
    (fun k ->
      let qs = Array.init k (fun _ -> fresh_q ()) in
      let budget =
        if p.dff_on_scc = 0 then 0
        else scc_budget * k / p.dff_on_scc
      in
      let drivers = build_scc_group st ~qs ~budget in
      Array.iteri
        (fun i q ->
          Circuit.Builder.add_gate builder ~name:q.s_name ~kind:Gate.Dff
            ~fanins:[ drivers.(i) ];
          vec_push st.global q)
        qs)
    groups;
  (* Feed-forward part: regions of combinational logic, each closed by a
     few pipeline flip-flops whose outputs are published only to later
     regions (no cycles by construction). *)
  let ff_dffs = p.n_dff - p.dff_on_scc in
  let ff_steps = st.gates_left + st.invs_left in
  let n_regions = max 1 ((ff_steps / 45) + 1) in
  let po_candidates = ref [] in
  for r = 0 to n_regions - 1 do
    let local = seed_local st 4 in
    if local.len = 0 && st.global.len = 0 then ()
    else begin
      let budget = ff_steps / n_regions in
      (* anchor the region to the rest of the circuit through its seeds *)
      if budget > 0 && st.gates_left > 0 && local.len >= 2 then
        ignore
          (create_cell st ~local
             ~forced:[ vec_get local 0; vec_get local 1 ]
             ~allow_inv:false ());
      for _ = 2 to budget do
        if st.gates_left + st.invs_left > 0 then
          ignore (create_cell st ~local ())
      done;
      let dffs_here =
        (ff_dffs / n_regions) + (if r < ff_dffs mod n_regions then 1 else 0)
      in
      let pending = ref [] in
      for _ = 1 to dffs_here do
        let q = fresh_q () in
        let d = pick_signal st ~local in
        d.s_uses <- d.s_uses + 1;
        Circuit.Builder.add_gate builder ~name:q.s_name ~kind:Gate.Dff
          ~fanins:[ d.s_name ];
        pending := q :: !pending
      done;
      (* publish the region's registers only now *)
      List.iter (fun q -> vec_push st.global q) !pending;
      if local.len > 0 then
        po_candidates := vec_get local (local.len - 1) :: !po_candidates
    end
  done;
  (* leftovers (rounding) — drain any still-unread primary inputs first *)
  let local = seed_local st 6 in
  let rec drain_pis () =
    match Queue.take_opt st.unread_pis with
    | None -> ()
    | Some pi when pi.s_uses > 0 -> drain_pis ()
    | Some pi ->
      if st.gates_left + st.invs_left > 0 then begin
        ignore (create_cell st ~local ~forced:[ pi ] ());
        drain_pis ()
      end
      else Queue.add pi st.unread_pis
  in
  drain_pis ();
  while st.gates_left + st.invs_left > 0 do
    ignore (create_cell st ~local ())
  done;
  let n_po = max 1 (min (p.n_pi + 5) ((total_steps / 80) + 1)) in
  let pos = ref [] in
  List.iteri
    (fun i s -> if i < n_po then pos := s.s_name :: !pos)
    !po_candidates;
  if !pos = [] && st.global.len > 0 then
    pos := [ (vec_get st.global (st.global.len - 1)).s_name ];
  List.iter (fun name -> Circuit.Builder.add_output builder name) !pos;
  Circuit.Builder.finish builder

let small_random ~seed ~n_pi ~n_dff ~n_gates =
  let p =
    {
      name = Printf.sprintf "rand-%Ld-%d-%d-%d" seed n_pi n_dff n_gates;
      n_pi = max 1 n_pi;
      n_dff;
      n_gates;
      n_inv = n_gates / 4;
      dff_on_scc = n_dff / 2;
      area_target = None;
    }
  in
  generate ~seed p
