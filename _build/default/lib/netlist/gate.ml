type kind =
  | Input
  | Buff
  | Not
  | And
  | Nand
  | Or
  | Nor
  | Xor
  | Xnor
  | Dff

let all = [ Input; Buff; Not; And; Nand; Or; Nor; Xor; Xnor; Dff ]

let name = function
  | Input -> "INPUT"
  | Buff -> "BUFF"
  | Not -> "NOT"
  | And -> "AND"
  | Nand -> "NAND"
  | Or -> "OR"
  | Nor -> "NOR"
  | Xor -> "XOR"
  | Xnor -> "XNOR"
  | Dff -> "DFF"

let of_name s =
  match String.uppercase_ascii s with
  | "BUFF" | "BUF" -> Some Buff
  | "NOT" | "INV" -> Some Not
  | "AND" -> Some And
  | "NAND" -> Some Nand
  | "OR" -> Some Or
  | "NOR" -> Some Nor
  | "XOR" -> Some Xor
  | "XNOR" -> Some Xnor
  | "DFF" -> Some Dff
  | _ -> None

let arity_ok k n =
  match k with
  | Input -> n = 0
  | Buff | Not | Dff -> n = 1
  | And | Nand | Or | Nor | Xor | Xnor -> n >= 2

let base_area = function
  | Input -> 0.0
  | Buff | Not -> 1.0
  | And | Or -> 3.0
  | Nand | Nor -> 2.0
  | Xor | Xnor -> 4.0
  | Dff -> 10.0

let area k n_inputs =
  if not (arity_ok k n_inputs) then
    invalid_arg
      (Printf.sprintf "Gate.area: %s cannot take %d inputs" (name k) n_inputs);
  base_area k +. float_of_int (max 0 (n_inputs - 2))

let dff_area = 10.0

let mux2_area = 3.0

let is_sequential = function
  | Dff -> true
  | Input | Buff | Not | And | Nand | Or | Nor | Xor | Xnor -> false

let eval k ins =
  let fold_and () = Array.for_all (fun b -> b) ins in
  let fold_or () = Array.exists (fun b -> b) ins in
  let fold_xor () = Array.fold_left (fun acc b -> acc <> b) false ins in
  match k with
  | Buff -> ins.(0)
  | Not -> not ins.(0)
  | And -> fold_and ()
  | Nand -> not (fold_and ())
  | Or -> fold_or ()
  | Nor -> not (fold_or ())
  | Xor -> fold_xor ()
  | Xnor -> not (fold_xor ())
  | Input | Dff -> invalid_arg "Gate.eval: not a combinational gate"

(* OCaml native ints carry 63 bits on 64-bit platforms; we use 62 of them
   (max_int = 2^62 - 1) so the mask is a plain positive constant. *)
let word_mask = max_int

let bits_per_word = 62

let eval_word k ins =
  let fold f init = Array.fold_left f init ins in
  let v =
    match k with
    | Buff -> ins.(0)
    | Not -> lnot ins.(0)
    | And -> fold ( land ) word_mask
    | Nand -> lnot (fold ( land ) word_mask)
    | Or -> fold ( lor ) 0
    | Nor -> lnot (fold ( lor ) 0)
    | Xor -> fold ( lxor ) 0
    | Xnor -> lnot (fold ( lxor ) 0)
    | Input | Dff -> invalid_arg "Gate.eval_word: not a combinational gate"
  in
  v land word_mask
