(** Profile-driven synthetic netlist generator.

    The ISCAS89 benchmark files are not redistributable, so the
    experiments run on synthetic circuits that reproduce the published
    structural statistics of each benchmark (Table 9) plus the
    sequential-feedback density implied by Table 10 ("DFFs on SCC"):

    - exact numbers of primary inputs, flip-flops, gates and inverters;
    - gate kinds chosen so the estimated area tracks the published value;
    - exactly [dff_on_scc] flip-flops woven into directed feedback loops
      (strongly connected components), the rest strictly feed-forward;
    - locally clustered combinational regions so that flow-based
      clustering has structure to discover (a locality parameter controls
      how often a gate reads signals from its own region).

    Construction is incremental: a gate may only read signals that
    already exist, and a feed-forward flip-flop's output is published to
    later regions only after its data input is fixed, so combinational
    cycles are impossible and the strongly connected components are
    exactly the designated feedback groups. Generation is deterministic
    in (profile, seed). *)

type profile = {
  name : string;
  n_pi : int;
  n_dff : int;
  n_gates : int;      (** non-inverter combinational gates *)
  n_inv : int;        (** inverters *)
  dff_on_scc : int;   (** flip-flops that must lie on directed cycles *)
  area_target : float option;
      (** steer the gate-kind mix toward this estimated area *)
}

val generate : ?seed:int64 -> ?locality:float -> profile -> Circuit.t
(** [generate p] builds the circuit. [locality] (default 0.95) is the
    probability that a gate input comes from its own region.
    Raises [Invalid_argument] on inconsistent profiles (negative counts,
    [dff_on_scc > n_dff], no signal sources). *)

val small_random :
  seed:int64 -> n_pi:int -> n_dff:int -> n_gates:int -> Circuit.t
(** Small unconstrained random circuit for property-based tests; valid by
    construction, roughly half of the flip-flops on feedback loops. *)
