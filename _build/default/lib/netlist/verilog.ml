(* Handwritten lexer + recursive-descent parser for the gate-level
   Verilog subset documented in the interface. *)

type token =
  | Ident of string
  | Lparen
  | Rparen
  | Comma
  | Semi
  | Eof

type lexer = {
  file : string;
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable lookahead : token option;
}

let lexer_of ?(file = "<string>") src =
  { file; src; pos = 0; line = 1; lookahead = None }

let error lx fmt =
  Printf.ksprintf
    (fun msg -> raise (Circuit.Error (Printf.sprintf "%s:%d: %s" lx.file lx.line msg)))
    fmt

let is_ident_char c =
  match c with
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '$' -> true
  | _ -> false

let rec skip_blank lx =
  let len = String.length lx.src in
  if lx.pos < len then
    match lx.src.[lx.pos] with
    | ' ' | '\t' | '\r' ->
      lx.pos <- lx.pos + 1;
      skip_blank lx
    | '\n' ->
      lx.pos <- lx.pos + 1;
      lx.line <- lx.line + 1;
      skip_blank lx
    | '/' when lx.pos + 1 < len && lx.src.[lx.pos + 1] = '/' ->
      while lx.pos < len && lx.src.[lx.pos] <> '\n' do
        lx.pos <- lx.pos + 1
      done;
      skip_blank lx
    | '/' when lx.pos + 1 < len && lx.src.[lx.pos + 1] = '*' ->
      lx.pos <- lx.pos + 2;
      let finished = ref false in
      while not !finished do
        if lx.pos + 1 >= len then error lx "unterminated comment"
        else if lx.src.[lx.pos] = '*' && lx.src.[lx.pos + 1] = '/' then begin
          lx.pos <- lx.pos + 2;
          finished := true
        end
        else begin
          if lx.src.[lx.pos] = '\n' then lx.line <- lx.line + 1;
          lx.pos <- lx.pos + 1
        end
      done;
      skip_blank lx
    | _ -> ()

let lex lx =
  skip_blank lx;
  let len = String.length lx.src in
  if lx.pos >= len then Eof
  else
    match lx.src.[lx.pos] with
    | '(' -> lx.pos <- lx.pos + 1; Lparen
    | ')' -> lx.pos <- lx.pos + 1; Rparen
    | ',' -> lx.pos <- lx.pos + 1; Comma
    | ';' -> lx.pos <- lx.pos + 1; Semi
    | '\\' ->
      (* escaped identifier: backslash to next whitespace *)
      let start = lx.pos + 1 in
      let p = ref start in
      while
        !p < len
        && (match lx.src.[!p] with ' ' | '\t' | '\n' | '\r' -> false | _ -> true)
      do
        incr p
      done;
      if !p = start then error lx "empty escaped identifier";
      let name = String.sub lx.src start (!p - start) in
      lx.pos <- !p;
      Ident name
    | c when is_ident_char c ->
      let start = lx.pos in
      while lx.pos < len && is_ident_char lx.src.[lx.pos] do
        lx.pos <- lx.pos + 1
      done;
      Ident (String.sub lx.src start (lx.pos - start))
    | c -> error lx "illegal character %C" c

let next lx =
  match lx.lookahead with
  | Some t ->
    lx.lookahead <- None;
    t
  | None -> lex lx

let peek lx =
  match lx.lookahead with
  | Some t -> t
  | None ->
    let t = lex lx in
    lx.lookahead <- Some t;
    t

let expect lx tok what =
  let got = next lx in
  if got <> tok then error lx "expected %s" what

let ident lx what =
  match next lx with
  | Ident s -> s
  | Lparen | Rparen | Comma | Semi | Eof -> error lx "expected %s" what

let ident_list lx =
  let rec more acc =
    match next lx with
    | Comma -> more (ident lx "an identifier" :: acc)
    | Semi -> List.rev acc
    | Ident _ | Lparen | Rparen | Eof -> error lx "expected ',' or ';'"
  in
  more [ ident lx "an identifier" ]

let primitive_of_name = function
  | "and" -> Some Gate.And
  | "nand" -> Some Gate.Nand
  | "or" -> Some Gate.Or
  | "nor" -> Some Gate.Nor
  | "xor" -> Some Gate.Xor
  | "xnor" -> Some Gate.Xnor
  | "not" -> Some Gate.Not
  | "buf" -> Some Gate.Buff
  | "dff" | "DFF" -> Some Gate.Dff
  | _ -> None

let parse_string ?file src =
  let lx = lexer_of ?file src in
  (match next lx with
   | Ident "module" -> ()
   | _ -> error lx "expected 'module'");
  let title = ident lx "a module name" in
  (* port header: names are redundant with the declarations; skip *)
  (match peek lx with
   | Lparen ->
     ignore (next lx);
     let rec skip_ports () =
       match next lx with
       | Rparen -> ()
       | Eof -> error lx "unterminated port list"
       | Ident _ | Comma | Lparen | Semi -> skip_ports ()
     in
     skip_ports ();
     expect lx Semi "';' after the port list"
   | Semi -> ignore (next lx)
   | Ident _ | Rparen | Comma | Eof -> error lx "expected '(' or ';'");
  let b = Circuit.Builder.create title in
  let seq = ref 0 in
  let finished = ref false in
  while not !finished do
    match next lx with
    | Ident "endmodule" -> finished := true
    | Eof -> error lx "missing 'endmodule'"
    | Ident "input" -> List.iter (Circuit.Builder.add_input b) (ident_list lx)
    | Ident "output" -> List.iter (Circuit.Builder.add_output b) (ident_list lx)
    | Ident "wire" -> ignore (ident_list lx)
    | Ident kw ->
      (match primitive_of_name kw with
       | None -> error lx "unsupported construct %S (gate-level subset only)" kw
       | Some kind ->
         (* [instance_name] ( out, in, ... ) ; *)
         (match peek lx with
          | Ident _ -> ignore (next lx)
          | Lparen | Rparen | Comma | Semi | Eof -> ());
         expect lx Lparen "'('";
         let rec conns acc =
           let name = ident lx "a connection" in
           match next lx with
           | Comma -> conns (name :: acc)
           | Rparen -> List.rev (name :: acc)
           | Ident _ | Lparen | Semi | Eof -> error lx "expected ',' or ')'"
         in
         let connections = conns [] in
         expect lx Semi "';'";
         incr seq;
         (match connections with
          | out :: (_ :: _ as ins) ->
            Circuit.Builder.add_gate b ~name:out ~kind ~fanins:ins
          | [ _ ] | [] ->
            error lx "primitive %s needs an output and at least one input" kw))
    | Lparen | Rparen | Comma | Semi -> error lx "expected a statement"
  done;
  Circuit.Builder.finish b

let parse_file path =
  let ic = open_in_bin path in
  let src =
    try
      let len = in_channel_length ic in
      let s = really_input_string ic len in
      close_in ic;
      s
    with e ->
      close_in_noerr ic;
      raise e
  in
  parse_string ~file:path src

let plain_identifier name =
  String.length name > 0
  && (match name.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all is_ident_char name

let emit_name name =
  if plain_identifier name then name else "\\" ^ name ^ " "

let keyword_of_kind = function
  | Gate.And -> "and"
  | Gate.Nand -> "nand"
  | Gate.Or -> "or"
  | Gate.Nor -> "nor"
  | Gate.Xor -> "xor"
  | Gate.Xnor -> "xnor"
  | Gate.Not -> "not"
  | Gate.Buff -> "buf"
  | Gate.Dff -> "dff"
  | Gate.Input -> invalid_arg "Verilog: Input is not a primitive"

let to_string (c : Circuit.t) =
  let buf = Buffer.create 4096 in
  let name id = emit_name (Circuit.node c id).Circuit.name in
  let module_name =
    if plain_identifier c.Circuit.title then c.Circuit.title else "top"
  in
  let ports =
    Array.to_list (Array.map name c.Circuit.inputs)
    @ Array.to_list (Array.map name c.Circuit.outputs)
  in
  Printf.bprintf buf "module %s (%s);\n" module_name (String.concat ", " ports);
  Array.iter (fun pi -> Printf.bprintf buf "  input %s;\n" (name pi)) c.Circuit.inputs;
  Array.iter (fun po -> Printf.bprintf buf "  output %s;\n" (name po)) c.Circuit.outputs;
  Array.iter
    (fun (nd : Circuit.node) ->
      match nd.Circuit.kind with
      | Gate.Input -> ()
      | Gate.Buff | Gate.Not | Gate.And | Gate.Nand | Gate.Or | Gate.Nor
      | Gate.Xor | Gate.Xnor | Gate.Dff ->
        if not (Circuit.is_po c nd.Circuit.id) then
          Printf.bprintf buf "  wire %s;\n" (emit_name nd.Circuit.name))
    c.Circuit.nodes;
  let seq = ref 0 in
  Array.iter
    (fun (nd : Circuit.node) ->
      match nd.Circuit.kind with
      | Gate.Input -> ()
      | Gate.Buff | Gate.Not | Gate.And | Gate.Nand | Gate.Or | Gate.Nor
      | Gate.Xor | Gate.Xnor | Gate.Dff ->
        incr seq;
        Printf.bprintf buf "  %s g%d (%s%s);\n"
          (keyword_of_kind nd.Circuit.kind)
          !seq
          (emit_name nd.Circuit.name)
          (Array.fold_left
             (fun acc f -> acc ^ ", " ^ name f)
             "" nd.Circuit.fanins))
    c.Circuit.nodes;
  Buffer.add_string buf "endmodule\n";
  Buffer.contents buf

let to_file path c =
  let oc = open_out path in
  (try output_string oc (to_string c)
   with e ->
     close_out_noerr oc;
     raise e);
  close_out oc
