(** Gate vocabulary and the CMOS area model of the paper (Sec. 4, ref [14]).

    Area units: 1 per inverter/buffer, 3 per 2-input AND or OR, 2 per
    2-input NAND or NOR, 4 per 2-input XOR or XNOR, 10 per D flip-flop, and
    1 extra unit per input beyond two on multi-input gates. A 2-to-1
    multiplexer costs 3 units (Fig. 3c). *)

type kind =
  | Input   (** primary input *)
  | Buff
  | Not
  | And
  | Nand
  | Or
  | Nor
  | Xor
  | Xnor
  | Dff     (** D flip-flop, single data input *)

val all : kind list

val name : kind -> string
(** Canonical ISCAS89 spelling, e.g. ["NAND"], ["DFF"]. *)

val of_name : string -> kind option
(** Case-insensitive parse of the ISCAS89 spelling ([BUF] and [BUFF] both
    accepted). [Input] has no spelling and yields [None]. *)

val arity_ok : kind -> int -> bool
(** Whether a gate of this kind may take the given number of inputs:
    0 for [Input]; exactly 1 for [Buff], [Not], [Dff]; 2 or more for the
    rest. *)

val area : kind -> int -> float
(** [area k n_inputs] in the paper's units, including the +1 per input
    beyond two. Raises [Invalid_argument] when the arity is not allowed. *)

val dff_area : float
(** 10.0 — the reference unit for relative test-hardware costs. *)

val mux2_area : float
(** 3.0 — 2-to-1 multiplexer (Fig. 3c). *)

val is_sequential : kind -> bool

val eval : kind -> bool array -> bool
(** Combinational evaluation; [Dff] and [Input] are not evaluable and
    raise [Invalid_argument]. *)

val bits_per_word : int
(** Number of patterns packed per native word (62 on 64-bit hosts). *)

val eval_word : kind -> int array -> int
(** Bit-parallel evaluation over [bits_per_word]-bit words (the simulator
    packs that many patterns per word). Same domain restrictions as
    {!eval}. *)
