(** Structural Verilog frontend (gate-level subset).

    The ISCAS89 circuits circulate both as [.bench] files and as
    flattened structural Verilog; this module reads and writes the
    subset those netlists use:

    {v
      module name (a, b, y);
        input a, b;
        output y;
        wire w1;
        nand g1 (w1, a, b);   // output first, then inputs
        not  g2 (y, w1);
        dff  g3 (q, w1);      // q = DFF(w1); clock implied
      endmodule
    v}

    Supported: one module per file; scalar ports and wires (comma
    lists); the primitives [and or nand nor xor xnor not buf dff] with
    the output as first connection; optional instance names; [//] and
    [/* */] comments; backslash-escaped identifiers. Unsupported (raises
    [Circuit.Error]): vectors, assign statements, parameters, multiple
    modules, behavioural code. *)

val parse_string : ?file:string -> string -> Circuit.t
(** The circuit title is the module name. *)

val parse_file : string -> Circuit.t

val to_string : Circuit.t -> string
(** Writes the same subset; [parse_string (to_string c)] reproduces
    [c] up to node ordering. Signal names that are not Verilog
    identifiers are emitted in escaped form. *)

val to_file : string -> Circuit.t -> unit
