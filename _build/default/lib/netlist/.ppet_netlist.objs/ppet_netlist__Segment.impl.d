lib/netlist/segment.ml: Array Circuit Format Gate Hashtbl List Seq String
