lib/netlist/to_dot.mli: Circuit
