lib/netlist/to_dot.ml: Array Buffer Circuit Gate Hashtbl List Printf String
