lib/netlist/generator.ml: Array Char Circuit Gate Hashtbl Int64 List Ppet_digraph Printf Queue String
