lib/netlist/bench_writer.mli: Circuit
