lib/netlist/gate.mli:
