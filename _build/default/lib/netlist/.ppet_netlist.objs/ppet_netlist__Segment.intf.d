lib/netlist/segment.mli: Circuit Format
