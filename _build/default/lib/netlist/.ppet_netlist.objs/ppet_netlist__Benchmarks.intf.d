lib/netlist/benchmarks.mli: Circuit Generator
