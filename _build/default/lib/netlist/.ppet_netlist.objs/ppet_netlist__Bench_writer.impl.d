lib/netlist/bench_writer.ml: Array Buffer Circuit Gate List Printf String
