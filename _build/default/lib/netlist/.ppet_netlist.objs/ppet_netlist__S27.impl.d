lib/netlist/s27.ml: Bench_parser
