lib/netlist/to_graph.mli: Circuit Ppet_digraph
