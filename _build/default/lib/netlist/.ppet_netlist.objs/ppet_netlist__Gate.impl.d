lib/netlist/gate.ml: Array Printf String
