lib/netlist/bench_lexer.ml: Circuit Printf String
