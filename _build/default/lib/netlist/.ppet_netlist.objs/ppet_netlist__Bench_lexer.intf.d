lib/netlist/bench_lexer.mli:
