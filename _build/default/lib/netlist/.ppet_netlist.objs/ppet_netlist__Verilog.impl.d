lib/netlist/verilog.ml: Array Buffer Circuit Gate List Printf String
