lib/netlist/benchmarks.ml: Circuit Generator Hashtbl List String
