lib/netlist/to_graph.ml: Array Circuit Ppet_digraph
