lib/netlist/bench_parser.mli: Circuit
