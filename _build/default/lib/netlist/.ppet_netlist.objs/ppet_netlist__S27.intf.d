lib/netlist/s27.mli: Circuit
