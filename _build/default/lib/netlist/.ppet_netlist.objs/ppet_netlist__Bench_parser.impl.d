lib/netlist/bench_parser.ml: Bench_lexer Circuit Filename Gate List Printf String
