(** Multi-pin directed-graph extraction (paper Sec. 2.1, Fig. 2).

    Every circuit node (PI, gate, DFF) becomes a graph vertex with the
    same id; every driven signal becomes one net from its driver to all
    its reader nodes. Primary outputs do not add vertices: a PO is a net
    property, not a module. *)

val partition_view : Circuit.t -> Ppet_digraph.Netgraph.t
(** The graph G(V = R ∪ C, E) on which Merced partitions. *)

val driver_of_net : Ppet_digraph.Netgraph.t -> int -> int
(** Net id -> driving vertex (same as [Netgraph.net_src]; provided for
    symmetry in client code). *)

val net_of_driver : Circuit.t -> Ppet_digraph.Netgraph.t -> int array
(** [net_of_driver c g] maps a node id to the id of the net it drives, or
    -1 when the node has no fanout. Requires [g = partition_view c]. *)
