(** Recursive-descent parser for ISCAS89 [.bench] netlists.

    Grammar (newline-insensitive):
    {v
      file  ::= stmt* EOF
      stmt  ::= "INPUT"  "(" ident ")"
              | "OUTPUT" "(" ident ")"
              | ident "=" gate "(" ident ("," ident)* ")"
      gate  ::= AND | NAND | OR | NOR | XOR | XNOR | NOT | BUF(F) | DFF
    v}

    Signals may be referenced before they are defined, as in the MCNC
    distribution files. *)

val parse_string : ?title:string -> ?file:string -> string -> Circuit.t
(** Raises [Circuit.Error] with position information on syntax errors and
    on any inconsistency caught by {!Circuit.Builder.finish}. *)

val parse_file : string -> Circuit.t
(** Reads and parses the file; the circuit title is the file base name
    without extension. *)
