(** Handwritten lexer for the ISCAS89 [.bench] netlist format.

    Tokens: identifiers (signal and gate names, including digits, '_',
    '.', '[', ']', '/', '$'), punctuation ['('], [')'], [','], ['='], and
    end-of-file. ['#'] starts a comment running to end of line.
    Whitespace and newlines are insignificant except for terminating
    comments. Positions are tracked for error reporting. *)

type token =
  | Ident of string
  | Lparen
  | Rparen
  | Comma
  | Equal
  | Eof

type t

val of_string : ?file:string -> string -> t

val next : t -> token
(** Consume and return the next token.
    Raises [Circuit.Error] on an illegal character. *)

val peek : t -> token
(** Look at the next token without consuming it. *)

val position : t -> string
(** Human-readable "file:line" of the token about to be read. *)
