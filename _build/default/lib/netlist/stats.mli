(** Structural statistics of a circuit — the columns of Table 9. *)

type t = {
  title : string;
  n_pi : int;        (** primary inputs *)
  n_po : int;        (** primary outputs *)
  n_dff : int;       (** flip-flops *)
  n_gates : int;     (** combinational gates other than inverters *)
  n_inv : int;       (** inverters (NOT gates) *)
  area : float;      (** estimated area in the paper's units *)
  max_fanin : int;   (** largest gate fan-in — lower bound on feasible l_k *)
  depth : int;       (** maximal combinational depth *)
}

val of_circuit : Circuit.t -> t

val header : string
(** Fixed-width header matching {!row}. *)

val row : t -> string
(** One fixed-width text row, Table 9 style. *)

val pp : Format.formatter -> t -> unit
