type entry = {
  profile : Generator.profile;
  paper_area : float;
  paper_dff_on_scc : int;
  in_table11 : bool;
}

let mk name n_pi n_dff n_gates n_inv area dff_on_scc in_table11 =
  {
    profile =
      {
        Generator.name;
        n_pi;
        n_dff;
        n_gates;
        n_inv;
        dff_on_scc;
        area_target = Some area;
      };
    paper_area = area;
    paper_dff_on_scc = dff_on_scc;
    in_table11;
  }

(* Columns: name, PIs, DFFs, gates, INVs, area (Table 9);
   DFFs-on-SCC (Table 10); present in Table 11. *)
let all =
  [
    mk "s510" 19 6 179 32 547. 6 false;
    mk "s420.1" 18 16 140 78 620. 16 false;
    mk "s641" 35 19 107 272 832. 15 true;
    mk "s713" 35 19 139 254 892. 15 true;
    mk "s820" 18 5 256 33 943. 5 false;
    mk "s832" 18 5 262 25 961. 5 false;
    mk "s838.1" 34 32 288 158 1268. 32 false;
    mk "s1423" 17 74 490 167 2238. 71 false;
    mk "s5378" 35 179 1004 1775 6241. 124 true;
    mk "s9234.1" 36 211 2027 3570 11467. 172 true;
    mk "s9234" 19 228 2027 3570 11637. 173 false;
    mk "s13207.1" 62 638 2573 5378 19171. 462 true;
    mk "s13207" 31 669 2573 5378 19476. 463 true;
    mk "s15850.1" 77 534 3448 6324 21305. 487 true;
    mk "s35932" 35 1728 12204 3861 50625. 1728 true;
    mk "s38417" 28 1636 8709 13470 52768. 1166 true;
    mk "s38584.1" 38 1426 11448 7805 55147. 1424 true;
  ]

let find name =
  match List.find_opt (fun e -> String.equal e.profile.Generator.name name) all with
  | Some e -> e
  | None -> raise Not_found

let names = List.map (fun e -> e.profile.Generator.name) all

let cache : (string * int64, Circuit.t) Hashtbl.t = Hashtbl.create 17

let circuit ?(seed = 0x5EEDL) name =
  match Hashtbl.find_opt cache (name, seed) with
  | Some c -> c
  | None ->
    let e = find name in
    let c = Generator.generate ~seed e.profile in
    Hashtbl.replace cache (name, seed) c;
    c

let small =
  List.filter_map
    (fun e ->
      if e.paper_area < 3000. then Some e.profile.Generator.name else None)
    all
