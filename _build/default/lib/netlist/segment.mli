(** Circuit segments — the CUTs of PPET (Fig. 1a).

    A segment is a set of circuit nodes tested as one unit: its {e input
    signals} are the distinct drivers feeding it from outside plus the
    primary inputs inside it (the paper's input count iota, "including
    primary inputs"), and its {e observation points} are the member
    signals read from outside (or primary outputs) — where the succeeding
    CBIT compacts responses. *)

type t = {
  members : int array;        (** node ids, ascending *)
  input_drivers : int array;  (** outside nodes driving members, ascending *)
  inside_pis : int array;     (** PI nodes that are members, ascending *)
  observed : int array;       (** member nodes read outside or POs, ascending *)
}

val of_members : Circuit.t -> int array -> t
(** Compute the boundary of a member set. Raises [Invalid_argument] on
    duplicate or out-of-range ids. *)

val input_count : t -> int
(** iota = external drivers + internal PIs; the CBIT width the segment
    needs, and the exponent of its exhaustive pattern count. *)

val input_signals : t -> int array
(** Concatenation [input_drivers @ inside_pis] — the signals a CBIT
    drives during test mode, in a fixed order. *)

val mem : t -> int -> bool

val pp : Circuit.t -> Format.formatter -> t -> unit
