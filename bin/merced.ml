(* Merced — the BIST compiler of the paper (Table 2), as a command-line
   tool. Subcommands: stats, partition, generate, selftest, analyze,
   insert, retime, dot, sweep, check, fuzz, lint, bench, campaign,
   calibrate, serve, submit.

   Exit-code contract (every subcommand): 0 = success with no findings,
   1 = the tool worked and found something (lint diagnostics, check
   failures, fuzz violations), 2 = usage error or internal failure. *)

module Circuit = Ppet_netlist.Circuit
module Stats = Ppet_netlist.Stats
module Bench_parser = Ppet_netlist.Bench_parser
module Bench_writer = Ppet_netlist.Bench_writer
module Benchmarks = Ppet_netlist.Benchmarks
module Params = Ppet_core.Params
module Merced = Ppet_core.Merced
module Report = Ppet_core.Report
module Assign = Ppet_core.Assign
module Check_error = Ppet_check.Error
module Seq_check = Ppet_check.Seq_check
module Fuzz = Ppet_check.Fuzz
module Lint_engine = Ppet_lint.Engine
module Lint_registry = Ppet_lint.Registry
module Diag = Ppet_lint.Diag
module Obs = Ppet_obs.Obs
module Obs_export = Ppet_obs.Export
module Bench_runner = Ppet_core.Bench_runner
module Campaign = Ppet_core.Campaign
module Cost_model = Ppet_core.Cost_model
module Dispatch_compare = Ppet_core.Dispatch_compare
module Serve_ops = Ppet_serve.Ops
module Sjson = Ppet_serve.Json

open Cmdliner

(* ------------------------------------------------------------------ *)
(* shared argument parsing                                             *)

(* spec resolution lives in Ppet_serve.Ops so the daemon and the CLI
   agree on it (and on the error text) by construction *)
let load_circuit = Serve_ops.load_circuit

let circuit_arg =
  let doc =
    "Circuit to process: a .bench or .v (structural Verilog) file path, \
     \"s27\", or an ISCAS89 benchmark name (synthesized to the published \
     profile), e.g. s5378."
  in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"CIRCUIT" ~doc)

let lk_arg =
  let doc = "Input constraint / CBIT length l_k (paper uses 16 and 24)." in
  Arg.(value & opt int 16 & info [ "l"; "lk" ] ~docv:"LK" ~doc)

let beta_arg =
  let doc = "Loop cut relaxation factor beta of Eq. 6 (paper uses 50)." in
  Arg.(value & opt int 50 & info [ "beta" ] ~docv:"BETA" ~doc)

let seed_arg =
  let doc = "Random seed for the flow injection." in
  Arg.(value & opt int 0x4DAC & info [ "seed" ] ~docv:"SEED" ~doc)

let jobs_arg =
  let doc =
    "Shard fault simulation across $(docv) parallel domains (default 1 = \
     serial). Results are bit-identical at any job count; only the wall \
     clock changes."
  in
  Arg.(value & opt int 1 & info [ "j"; "jobs" ] ~docv:"N" ~doc)

(* Every subcommand taking --jobs / --fault-cutover validates through
   these, so a nonsensical value is the same usage error (exit 2) with
   the same message everywhere instead of whatever the first consumer
   of the value happens to raise. *)
let max_jobs = 512

let validate_jobs jobs =
  if jobs < 1 || jobs > max_jobs then
    raise
      (Circuit.Error
         (Printf.sprintf "--jobs must be in 1..%d, got %d" max_jobs jobs))

let validate_fault_cutover v =
  if v < 1 || v > 1 lsl 30 then
    raise
      (Circuit.Error
         (Printf.sprintf "--fault-cutover must be in 1..2^30, got %d" v))

(* run [f] with the pool a --jobs value asks for: none for the serial
   default, a shared domain pool otherwise *)
let with_jobs jobs f =
  validate_jobs jobs;
  if jobs = 1 then f None
  else Ppet_parallel.Domain_pool.with_pool ~jobs (fun p -> f (Some p))

(* write in the format the file extension asks for *)
let write_circuit path c =
  if Filename.check_suffix path ".v" then Ppet_netlist.Verilog.to_file path c
  else Bench_writer.to_file path c

let substrate_arg =
  let doc =
    "Graph substrate driving the pipeline: $(b,csr) (flat int-array \
     adjacency, the default) or $(b,hashed) (the original per-vertex \
     structures, kept as a debugging cross-check). Both produce \
     identical partitions and identical feasible retimings; they may \
     report different over-constrained cycles on infeasible systems."
  in
  Arg.(value
       & opt (enum [ ("hashed", Params.Hashed); ("csr", Params.Csr) ]) Params.Csr
       & info [ "substrate" ] ~docv:"KIND" ~doc)

let fault_cutover_arg =
  let doc =
    "Fault-simulate segments with fewer member gates than $(docv) \
     serially even when --jobs supplies a pool (the parallel dispatch \
     knee). Results are identical at any value; only the wall clock \
     moves."
  in
  Arg.(value
       & opt int Params.default.Params.fault_cutover
       & info [ "fault-cutover" ] ~docv:"GATES" ~doc)

let params_of ?(substrate = Params.Csr)
    ?(fault_cutover = Params.default.Params.fault_cutover)
    ?(partitioner = Params.Flow) lk beta seed =
  validate_fault_cutover fault_cutover;
  { Params.default with
    Params.l_k = lk; beta; seed = Int64.of_int seed; substrate; fault_cutover;
    partitioner }

let partitioner_arg =
  let doc =
    "Partitioning algorithm: $(b,flow) (the paper's saturation flow \
     pipeline, the default), or a baseline for comparison — $(b,fm) \
     (Fiduccia–Mattheyses), $(b,annealing), $(b,random). Baselines \
     ignore --lock."
  in
  Arg.(value
       & opt
           (enum
              [ ("flow", Params.Flow); ("fm", Params.Fm);
                ("annealing", Params.Annealing); ("random", Params.Random) ])
           Params.Flow
       & info [ "partitioner" ] ~docv:"ALG" ~doc)

(* --dispatch auto resolves knobs from a calibrated cost model; the
   model only gets read (and validated, exit 2 on a bad one) when auto
   is actually selected *)
let dispatch_arg =
  let doc =
    "Knob selection: $(b,fixed) (the flags as given, the default) or \
     $(b,auto) (derive partitioner, fault-sim word width, pool use and \
     cutover per circuit from the calibrated cost model in --model)."
  in
  Arg.(value
       & opt (enum [ ("fixed", `Fixed); ("auto", `Auto) ]) `Fixed
       & info [ "dispatch" ] ~docv:"MODE" ~doc)

let model_arg =
  let doc =
    "Calibrated cost model (COST_MODEL.json, from $(b,merced calibrate)) \
     backing $(b,--dispatch auto)."
  in
  Arg.(value & opt string "COST_MODEL.json"
       & info [ "model" ] ~docv:"FILE" ~doc)

let dispatch_model dispatch model =
  match dispatch with `Fixed -> None | `Auto -> Some (Cost_model.load model)

let trace_arg =
  let doc =
    "Record a pipeline trace (spans, counters, per-worker utilisation) \
     and write it to $(docv) on exit. A .json target gets Chrome \
     trace_event format (open in chrome://tracing or Perfetto); any \
     other extension gets the human-readable tree."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

(* Install a trace sink around the subcommand body when --trace asks for
   one; the file is written even when the body raises, so failed runs
   still leave their partial trace behind. *)
let with_trace trace f =
  match trace with
  | None -> f ()
  | Some path ->
    let tr = Obs.create () in
    Obs.install tr;
    Fun.protect
      ~finally:(fun () ->
        Obs.uninstall ();
        let text =
          if Filename.check_suffix path ".json" then Obs_export.to_chrome tr
          else Obs_export.to_human tr
        in
        let oc = open_out path in
        output_string oc text;
        close_out oc;
        Printf.eprintf "trace: wrote %s (%d events)\n" path
          (List.length (Obs.events tr)))
      f

(* documented once, attached to every subcommand *)
let exits =
  [ Cmd.Exit.info 0 ~doc:"on success, with nothing found.";
    Cmd.Exit.info 1
      ~doc:"on findings: lint diagnostics, check failures, fuzz violations.";
    Cmd.Exit.info 2 ~doc:"on usage errors and internal failures." ]

(* run a subcommand body returning its exit status; library failures
   (typed or stringly) become an error line and status 2 — they mean
   the tool could not do its job, not that it found something *)
let wrap_status ?trace f =
  try with_trace trace f with
  | Check_error.Error e ->
    Printf.eprintf "error: %s\n" (Check_error.to_string e);
    2
  | Circuit.Error msg ->
    Printf.eprintf "error: %s\n" msg;
    2
  | Invalid_argument msg ->
    Printf.eprintf "error: %s\n" msg;
    2

let wrap ?trace f =
  wrap_status ?trace (fun () ->
      f ();
      0)

(* ------------------------------------------------------------------ *)
(* stats                                                               *)

let stats_run spec trace =
  wrap ?trace (fun () ->
      let c = load_circuit spec in
      let s = Stats.of_circuit c in
      print_endline Stats.header;
      print_endline (Stats.row s);
      Format.printf "%a@." Stats.pp s)

let stats_cmd =
  let doc = "Print Table 9-style structural statistics of a circuit." in
  Cmd.v (Cmd.info "stats" ~doc ~exits)
    Term.(const stats_run $ circuit_arg $ trace_arg)

(* ------------------------------------------------------------------ *)
(* partition                                                           *)

let locked_fn c names =
  match names with
  | [] -> None
  | _ ->
    let ids = Hashtbl.create 8 in
    List.iter
      (fun n ->
        match Circuit.find c n with
        | id -> Hashtbl.replace ids id ()
        | exception Not_found ->
          raise (Circuit.Error (Printf.sprintf "--lock: unknown signal %S" n)))
      names;
    Some (Hashtbl.mem ids)

let partition_run spec lk beta seed substrate partitioner dispatch model lock
    csv verbose trace =
  wrap ?trace (fun () ->
      let c = load_circuit spec in
      let params = params_of ~substrate ~partitioner lk beta seed in
      let params =
        match dispatch_model dispatch model with
        | None -> params
        | Some m -> fst (Serve_ops.dispatch ~model:m ~params c)
      in
      if csv then begin
        let r = Merced.run ~params ?locked:(locked_fn c lock) c in
        print_endline Report.csv_header;
        print_endline (Report.csv_row r)
      end
      else
        (* the human rendering is shared with `merced serve`, so the
           daemon's compile replies are byte-identical to this *)
        print_string
          (Serve_ops.compile ~verbose ?locked:(locked_fn c lock) ~params c)
            .Serve_ops.output)

let lock_arg =
  Arg.(value & opt (list string) [] & info [ "lock" ] ~docv:"SIGNALS"
         ~doc:"Comma-separated signal names to lock out of the BIST \
               conversion (Table 5's lock option).")

let partition_cmd =
  let doc = "Run the Merced pipeline: partition a circuit for PPET." in
  let csv =
    Arg.(value & flag & info [ "csv" ] ~doc:"Emit a machine-readable CSV row.")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"List every partition.")
  in
  Cmd.v
    (Cmd.info "partition" ~doc ~exits)
    Term.(const partition_run $ circuit_arg $ lk_arg $ beta_arg $ seed_arg
          $ substrate_arg $ partitioner_arg $ dispatch_arg $ model_arg
          $ lock_arg $ csv $ verbose $ trace_arg)

(* ------------------------------------------------------------------ *)
(* generate                                                            *)

let generate_run name output seed trace =
  wrap ?trace (fun () ->
      let e = Benchmarks.find name in
      let c =
        Ppet_netlist.Generator.generate ~seed:(Int64.of_int seed)
          e.Benchmarks.profile
      in
      match output with
      | Some path ->
        write_circuit path c;
        Printf.printf "wrote %s (%d nodes)\n" path (Circuit.size c)
      | None -> print_string (Bench_writer.to_string c))

let generate_cmd =
  let doc =
    "Synthesize the stand-in netlist for a named ISCAS89 profile and emit \
     it in .bench format."
  in
  let bench_name =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"NAME"
           ~doc:"Benchmark name, e.g. s5378.")
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write to a file instead of standard output.")
  in
  Cmd.v (Cmd.info "generate" ~doc ~exits)
    Term.(const generate_run $ bench_name $ output $ seed_arg $ trace_arg)

(* ------------------------------------------------------------------ *)
(* selftest                                                            *)

let selftest_run spec lk beta seed substrate fault_cutover max_width dispatch
    model jobs trace =
  wrap ?trace (fun () ->
      let c = load_circuit spec in
      let base = params_of ~substrate ~fault_cutover lk beta seed in
      (* body shared with `merced serve` for byte-identical replies *)
      with_jobs jobs (fun pool ->
          let params, words, pool =
            match dispatch_model dispatch model with
            | None -> (base, None, pool)
            | Some m ->
              let params, d = Serve_ops.dispatch ?pool ~model:m ~params:base c in
              ( params,
                Some d.Cost_model.d_words,
                (* the model says the pool won't pay on this circuit *)
                if d.Cost_model.d_jobs <= 1 then None else pool )
          in
          print_string
            (Serve_ops.selftest ?pool ?words ~params ~max_width c)
              .Serve_ops.output))

let selftest_cmd =
  let doc =
    "Partition a circuit, then pseudo-exhaustively fault-test every \
     segment and print the PPET schedule."
  in
  let max_width =
    Arg.(value & opt int 14 & info [ "max-width" ] ~docv:"W"
           ~doc:"Skip exhaustive simulation of segments wider than this.")
  in
  Cmd.v (Cmd.info "selftest" ~doc ~exits)
    Term.(const selftest_run $ circuit_arg $ lk_arg $ beta_arg $ seed_arg
          $ substrate_arg $ fault_cutover_arg $ max_width $ dispatch_arg
          $ model_arg $ jobs_arg $ trace_arg)

(* ------------------------------------------------------------------ *)
(* analyze                                                             *)

let analyze_run spec lk beta seed substrate json jobs trace =
  wrap ?trace (fun () ->
      let c = load_circuit spec in
      (* body shared with `merced serve` for byte-identical replies *)
      with_jobs jobs (fun pool ->
          print_string
            (Serve_ops.analyze ?pool
               ~params:(params_of ~substrate lk beta seed)
               ~json c)
              .Serve_ops.output))

let analyze_cmd =
  let doc =
    "Run the static dataflow analyses over a circuit: ternary \
     constant propagation, X-initializability, SCOAP testability, and \
     the per-segment untestable-fault classification the campaign \
     pruner uses. Deterministic output, no simulation."
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit the statistics as JSON instead of the human \
                 summary.")
  in
  Cmd.v (Cmd.info "analyze" ~doc ~exits)
    Term.(const analyze_run $ circuit_arg $ lk_arg $ beta_arg $ seed_arg
          $ substrate_arg $ json $ jobs_arg $ trace_arg)

(* ------------------------------------------------------------------ *)
(* insert                                                              *)

let insert_run spec lk beta seed substrate output trace =
  wrap ?trace (fun () ->
      let c = load_circuit spec in
      let r = Merced.run ~params:(params_of ~substrate lk beta seed) c in
      let t = Ppet_core.Testable.insert r in
      Printf.printf
        "inserted %d test cells in %d CBITs (+%.0f area units, %.1f/cell)\n"
        (Ppet_core.Testable.cell_count t)
        (List.length t.Ppet_core.Testable.groups)
        t.Ppet_core.Testable.added_area
        (Ppet_core.Testable.measured_overhead_per_cell t);
      Printf.printf "controls: %s %s %s %s; scan chain %d bits\n"
        t.Ppet_core.Testable.test_en t.Ppet_core.Testable.fb_en
        t.Ppet_core.Testable.psa_en t.Ppet_core.Testable.scan_in
        (Ppet_core.Testable.scan_length t);
      match output with
      | Some path ->
        write_circuit path t.Ppet_core.Testable.circuit;
        Printf.printf "wrote %s (%d nodes)\n" path
          (Circuit.size t.Ppet_core.Testable.circuit)
      | None -> ())

let insert_cmd =
  let doc =
    "Insert the PPET test hardware (A_CELL registers, CBIT feedback, scan \
     chain) into a circuit and optionally write the testable netlist."
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write the testable netlist in .bench format.")
  in
  Cmd.v (Cmd.info "insert" ~doc ~exits)
    Term.(const insert_run $ circuit_arg $ lk_arg $ beta_arg $ seed_arg
          $ substrate_arg $ output $ trace_arg)

(* ------------------------------------------------------------------ *)
(* retime                                                              *)

let retime_run spec lk beta seed substrate output trace =
  wrap ?trace (fun () ->
      let c = load_circuit spec in
      let r = Merced.run ~params:(params_of ~substrate lk beta seed) c in
      match Merced.retimed_netlist r with
      | None -> prerr_endline "error: no legal retiming found"
      | Some (emitted, dropped) ->
        let c' = emitted.Ppet_retiming.To_circuit.circuit in
        Printf.printf
          "retimed netlist: %d nodes (%d registers; %d cut nets left to \
           multiplexed cells)\n"
          (Circuit.size c')
          (Array.length (Circuit.dffs c'))
          dropped;
        let unknown =
          List.length
            (List.filter
               (fun (_, v) -> v = Ppet_retiming.Logic3.X)
               emitted.Ppet_retiming.To_circuit.register_inits)
        in
        Printf.printf
          "initial states: %d registers, %d unknown (scan-initialised)\n"
          (List.length emitted.Ppet_retiming.To_circuit.register_inits)
          unknown;
        (match output with
         | Some path ->
           write_circuit path c';
           Printf.printf "wrote %s\n" path
         | None -> ()))

let retime_cmd =
  let doc =
    "Partition, solve for a legal retiming that registers every \
     combinational cut net, and emit the retimed netlist with recomputed \
     initial states."
  in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write the retimed netlist in .bench format.")
  in
  Cmd.v (Cmd.info "retime" ~doc ~exits)
    Term.(const retime_run $ circuit_arg $ lk_arg $ beta_arg $ seed_arg
          $ substrate_arg $ output $ trace_arg)

(* ------------------------------------------------------------------ *)
(* dot                                                                 *)

let dot_run spec lk beta seed substrate output partitioned trace =
  wrap ?trace (fun () ->
      let c = load_circuit spec in
      let text =
        if partitioned then begin
          let r = Merced.run ~params:(params_of ~substrate lk beta seed) c in
          let drivers =
            List.map
              (fun e -> Ppet_digraph.Netgraph.net_src r.Merced.graph e)
              r.Merced.assignment.Assign.cut_nets
          in
          Ppet_netlist.To_dot.partitioned c
            ~cluster_of:(fun v -> r.Merced.assignment.Assign.partition_of.(v))
            ~cut_net_drivers:drivers
        end
        else Ppet_netlist.To_dot.circuit c
      in
      match output with
      | Some path ->
        let oc = open_out path in
        output_string oc text;
        close_out oc;
        Printf.printf "wrote %s\n" path
      | None -> print_string text)

let dot_cmd =
  let doc = "Export a circuit (optionally with its PPET partitioning) as Graphviz dot." in
  let output =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"FILE"
           ~doc:"Write to a file instead of standard output.")
  in
  let partitioned =
    Arg.(value & flag & info [ "p"; "partitioned" ]
           ~doc:"Run Merced first and draw the partitions and cut nets.")
  in
  Cmd.v (Cmd.info "dot" ~doc ~exits)
    Term.(const dot_run $ circuit_arg $ lk_arg $ beta_arg $ seed_arg
          $ substrate_arg $ output $ partitioned $ trace_arg)

(* ------------------------------------------------------------------ *)
(* sweep                                                               *)

let sweep_run spec lks beta seed substrate trace =
  wrap ?trace (fun () ->
      let c = load_circuit spec in
      Printf.printf "%-4s %9s %12s %9s %9s %12s %14s\n" "lk" "nets-cut"
        "cuts-on-SCC" "w/R(%)" "w/o(%)" "sigma(DFF)" "test-cycles";
      List.iter
        (fun lk ->
          let r = Merced.run ~params:(params_of ~substrate lk beta seed) c in
          let b = r.Merced.breakdown in
          Printf.printf "%-4d %9d %12d %9.1f %9.1f %12.1f %14.3g\n" lk
            b.Ppet_core.Area_accounting.cuts_total
            b.Ppet_core.Area_accounting.cuts_on_scc
            b.Ppet_core.Area_accounting.ratio_with
            b.Ppet_core.Area_accounting.ratio_without r.Merced.sigma_dff
            r.Merced.testing_time)
        lks)

let sweep_cmd =
  let doc = "Sweep the input constraint and print the area/time trade-off." in
  let lks =
    Arg.(value & opt (list int) [ 8; 12; 16; 24 ] & info [ "lks" ] ~docv:"LKS"
           ~doc:"Comma-separated l_k values.")
  in
  Cmd.v (Cmd.info "sweep" ~doc ~exits)
    Term.(const sweep_run $ circuit_arg $ lks $ beta_arg $ seed_arg
          $ substrate_arg $ trace_arg)

(* ------------------------------------------------------------------ *)
(* check                                                               *)

let check_run spec lk beta seed substrate sequences cycles trace =
  wrap_status ?trace (fun () ->
      let c = load_circuit spec in
      let failures = ref 0 in
      let pass what = Printf.printf "%-11s ok: %s\n" what in
      let fail what =
        incr failures;
        Printf.printf "%-11s FAILED: %s\n" what
      in
      (* 1. writer -> parser round trip *)
      (match Bench_parser.parse_string (Bench_writer.to_string c) with
       | c' ->
         if Circuit.equal c c' then
           pass "round-trip" "writer -> parser is the identity"
         else fail "round-trip" "re-parsed netlist differs structurally"
       | exception Circuit.Error msg -> fail "round-trip" msg);
      let r = Merced.run ~params:(params_of ~substrate lk beta seed) c in
      (* 2. retimed netlist vs the original, 3-valued *)
      (match Merced.retimed_netlist r with
       | None -> Printf.printf "%-11s skipped: no legal retiming\n" "retimed"
       | Some (emitted, dropped) ->
         let c' = emitted.Ppet_retiming.To_circuit.circuit in
         (match
            Seq_check.check ~sequences ~cycles c c'
              ~init_right:(Ppet_retiming.To_circuit.init_fn emitted)
          with
          | Seq_check.Equivalent { sequences; cycles; latency } ->
            pass "retimed"
              (Printf.sprintf
                 "equivalent over %d sequences x %d cycles (latency %d; %d \
                  cuts left to mux cells)"
                 sequences cycles latency dropped)
          | Seq_check.Inequivalent d ->
            incr failures;
            Printf.printf "%-11s FAILED:\n" "retimed";
            Format.printf "  @[<v>%a@]@." Seq_check.pp_divergence d));
      (* 3. testable netlist in normal mode, word-parallel boolean *)
      let t = Ppet_core.Testable.insert r in
      let v =
        Ppet_core.Equivalence.check_bool ~cycles:(max 32 cycles) c
          t.Ppet_core.Testable.circuit
          ~force_right:
            [ (t.Ppet_core.Testable.test_en, false);
              (t.Ppet_core.Testable.fb_en, false);
              (t.Ppet_core.Testable.psa_en, false);
              (t.Ppet_core.Testable.scan_in, false) ]
      in
      if v.Ppet_core.Equivalence.equivalent then
        pass "testable"
          (Printf.sprintf "normal mode bit-identical over %d random streams"
             (v.Ppet_core.Equivalence.cycles_run * 62))
      else
        fail "testable"
          (match v.Ppet_core.Equivalence.first_mismatch with
           | Some (cy, name) ->
             Printf.sprintf "output %s diverges at cycle %d" name cy
           | None -> "diverges");
      if !failures = 0 then begin
        print_endline "check passed";
        0
      end
      else begin
        Printf.printf "check FAILED (%d of 3 checks)\n" !failures;
        1
      end)

let check_cmd =
  let doc =
    "Differentially verify one compile: writer/parser round trip, \
     3-valued sequential equivalence of the retimed netlist, and \
     normal-mode equivalence of the testable netlist."
  in
  let sequences =
    Arg.(value & opt int 4 & info [ "sequences" ] ~docv:"N"
           ~doc:"Random input sequences per equivalence check (on top of \
                 the 4 directed ones).")
  in
  let cycles =
    Arg.(value & opt int 24 & info [ "cycles" ] ~docv:"C"
           ~doc:"Cycles per input sequence.")
  in
  Cmd.v (Cmd.info "check" ~doc ~exits)
    Term.(const check_run $ circuit_arg $ lk_arg $ beta_arg $ seed_arg
          $ substrate_arg $ sequences $ cycles $ trace_arg)

(* ------------------------------------------------------------------ *)
(* fuzz                                                                *)

let fuzz_run seed count trace =
  wrap_status ?trace (fun () ->
      let r = Fuzz.run ~seed:(Int64.of_int seed) ~count () in
      Format.printf "%a@." Fuzz.pp_report r;
      if r.Fuzz.violations = [] then 0 else 1)

let fuzz_cmd =
  let doc =
    "Fuzz the full Merced flow (parse, partition, retime, CBIT \
     synthesis, self-test session) with generated and mutated netlists \
     under a crash/invariant/equivalence oracle. Exits non-zero on any \
     oracle violation; runs are deterministic in --seed/--count."
  in
  let count =
    Arg.(value & opt int 50 & info [ "count"; "n" ] ~docv:"K"
           ~doc:"Number of fuzz cases.")
  in
  Cmd.v (Cmd.info "fuzz" ~doc ~exits)
    Term.(const fuzz_run $ seed_arg $ count $ trace_arg)

(* ------------------------------------------------------------------ *)
(* lint                                                                *)

(* .bench text goes through the tolerant front-end so a broken file is
   findings (exit 1), not a crash; everything else (s27, benchmark
   names, .v files) is loaded strictly and linted in memory *)
let lint_one ?pool ~rules ~params spec =
  if
    spec <> "s27"
    && Sys.file_exists spec
    && not (Filename.check_suffix spec ".v")
  then
    let src = In_channel.with_open_text spec In_channel.input_all in
    Lint_engine.run_text ?pool ~rules ~params
      ~title:Filename.(remove_extension (basename spec))
      ~file:spec src
  else Lint_engine.run_circuit ?pool ~rules ~params (load_circuit spec)

let lint_list_rules () =
  List.iter
    (fun (r : Lint_registry.rule) ->
      Printf.printf "%-18s %-10s %-7s %s\n" r.Lint_registry.id
        (Lint_registry.family_name r.Lint_registry.family)
        (Diag.severity_name r.Lint_registry.severity)
        r.Lint_registry.doc)
    Lint_registry.all

let lint_run spec registry rules list_rules json verbose lk beta seed substrate
    jobs trace =
  wrap_status ?trace (fun () ->
      if list_rules then begin
        lint_list_rules ();
        0
      end
      else begin
        let rules =
          match rules with [] -> Lint_registry.ids | sel -> sel
        in
        (match Lint_registry.validate_selection rules with
         | Ok () -> ()
         | Error msg -> raise (Circuit.Error msg));
        let params = params_of ~substrate lk beta seed in
        let reports =
          with_jobs jobs (fun pool ->
              match (registry, spec) with
              | Some set, None ->
                let names =
                  match set with
                  | `Small -> Benchmarks.small
                  | `All -> Benchmarks.names
                in
                Lint_engine.run_registry ?pool ~rules ~params names
              | None, Some spec -> [ lint_one ?pool ~rules ~params spec ]
              | Some _, Some _ ->
                raise
                  (Circuit.Error "give either a CIRCUIT or --registry, not both")
              | None, None ->
                raise
                  (Circuit.Error
                     "nothing to lint: give a CIRCUIT or --registry"))
        in
        (if json then
           match reports with
           | [ r ] -> print_endline (Lint_engine.to_json r)
           | rs ->
             print_endline
               ("[" ^ String.concat "," (List.map Lint_engine.to_json rs) ^ "]")
         else
           List.iter
             (fun r -> List.iter print_endline (Lint_engine.to_human ~verbose r))
             reports);
        if List.exists (fun r -> Lint_engine.findings r > 0) reports then 1
        else 0
      end)

let lint_cmd =
  let doc =
    "Statically analyse a netlist (structural rules) and its compiled \
     PPET output (DFT rules, including an independent retiming-legality \
     certificate check). Diagnostics are deterministically ordered; \
     exit 0 = clean, 1 = findings, 2 = usage or internal error."
  in
  let circuit =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"CIRCUIT"
           ~doc:"Circuit to lint: a .bench or .v file path, \"s27\", or an \
                 ISCAS89 benchmark name. Omit when using $(b,--registry).")
  in
  let registry =
    Arg.(value
         & opt (some (enum [ ("small", `Small); ("all", `All) ])) None
         & info [ "registry" ] ~docv:"SET"
             ~doc:"Lint a whole benchmark set instead of one circuit: \
                   $(b,small) (the sub-3000-area circuits) or $(b,all) \
                   (all seventeen; minutes of CPU).")
  in
  let rules =
    Arg.(value & opt (list string) [] & info [ "rules" ] ~docv:"IDS"
           ~doc:"Comma-separated rule ids to evaluate (default: all; see \
                 $(b,--list-rules)).")
  in
  let list_rules =
    Arg.(value & flag & info [ "list-rules" ]
           ~doc:"Print the rule registry (id, family, severity, doc) and \
                 exit.")
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Emit the report as JSON (an array in registry mode).")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ]
           ~doc:"Also print info-severity diagnostics (advisory; never \
                 findings).")
  in
  Cmd.v (Cmd.info "lint" ~doc ~exits)
    Term.(const lint_run $ circuit $ registry $ rules $ list_rules $ json
          $ verbose $ lk_arg $ beta_arg $ seed_arg $ substrate_arg $ jobs_arg
          $ trace_arg)

(* ------------------------------------------------------------------ *)
(* bench                                                               *)

(* The regression guard of --against: every fresh guarded median must
   stay within its factor of the committed baseline's median for the
   same entry (name and job count). Retime medians are milliseconds and
   stable, so they get a tight 2x; fault_sim medians are microseconds
   and noisier, so they get 3x; the analysis fixed points are
   deterministic whole-graph sweeps, so a 2x drift means the worklist
   itself regressed. Fresh entries without a baseline row
   pass; mismatched circuit stats fail, because medians of different
   workloads are not comparable. *)
let guard_factor name =
  if Filename.check_suffix name "/retime" then Some 2.0
  else if Filename.check_suffix name "/fault_sim" then Some 3.0
  else if Filename.check_suffix name "/analysis" then Some 2.0
  else None

let bench_guard ~baseline entries =
  let key (e : Report.bench_entry) = (e.Report.entry_name, e.Report.jobs) in
  let base = List.map (fun e -> (key e, e)) baseline in
  let failures = ref 0 in
  List.iter
    (fun (e : Report.bench_entry) ->
      match guard_factor e.Report.entry_name with
      | None -> ()
      | Some factor -> (
        match List.assoc_opt (key e) base with
        | None ->
          Printf.printf "guard: %-24s no baseline entry, skipped\n"
            e.Report.entry_name
        | Some b ->
          let stats_ok =
            match (e.Report.circuit_stats, b.Report.circuit_stats) with
            (* compatible, not equal: baselines recorded before the
               partition-shape fields were stamped (segments = 0) stay
               comparable with freshly stamped entries *)
            | Some a, Some b -> Report.bench_stats_compatible a b
            | _, None -> true (* pre-stats baseline: compare on faith *)
            | None, Some _ -> false
          in
          if not stats_ok then begin
            incr failures;
            Printf.printf
              "guard: %-24s FAILED: circuit shape differs from baseline\n"
              e.Report.entry_name
          end
          else begin
            (* a nonpositive baseline median can only come from a bogus
               artefact (e.g. a --dry-run listing); the ratio would be
               inf/nan and the gate meaningless — loading already
               rejects it, this is the belt to that suspender *)
            if b.Report.median_ns <= 0. then
              raise
                (Circuit.Error
                   (Printf.sprintf
                      "--against: baseline entry %S has median %g ns"
                      b.Report.entry_name b.Report.median_ns));
            let ratio = e.Report.median_ns /. b.Report.median_ns in
            if ratio > factor then begin
              incr failures;
              Printf.printf
                "guard: %-24s FAILED: %.3gms vs baseline %.3gms (%.2fx > \
                 %.2fx)\n"
                e.Report.entry_name
                (e.Report.median_ns /. 1e6)
                (b.Report.median_ns /. 1e6)
                ratio factor
            end
            else
              Printf.printf "guard: %-24s ok (%.2fx of baseline)\n"
                e.Report.entry_name ratio
          end))
    entries;
  !failures

(* auto vs every forced configuration, with the speed gate — the
   BENCH_dispatch.json artefact CI tracks *)
let bench_compare ~benchmarks ~repeat ~jobs ~out ~model ~gate =
  if gate < 1.0 then
    raise (Circuit.Error (Printf.sprintf "--gate must be >= 1, got %g" gate));
  let plan =
    {
      Dispatch_compare.benchmarks;
      repeat;
      jobs;
      params = Params.default;
      model = Cost_model.load model;
      gate;
      slack_ns = Dispatch_compare.default_slack_ns;
    }
  in
  let progress name = Printf.eprintf "bench: %s\n%!" name in
  let report = Dispatch_compare.run ~progress plan in
  print_string (Dispatch_compare.human report);
  (* --compare has its own default artefact name *)
  let out = if out = "BENCH_pipeline.json" then "BENCH_dispatch.json" else out in
  let oc = open_out out in
  output_string oc (Dispatch_compare.to_json report);
  close_out oc;
  Printf.printf "wrote %s (%d entries)\n" out
    (List.length report.Dispatch_compare.entries);
  if report.Dispatch_compare.failures = [] then 0 else 1

let bench_run benchmarks repeat jobs out against compare model gate dry_run
    trace =
  wrap_status ?trace (fun () ->
      List.iter
        (fun name ->
          if
            name <> "s27"
            && (not (List.mem name Benchmarks.names))
            && not (List.mem name Benchmarks.synthetic_names)
          then
            raise
              (Circuit.Error
                 (Printf.sprintf
                    "--benchmarks: %S is neither \"s27\", a known benchmark \
                     (%s), nor a synthetic profile (%s)"
                    name
                    (String.concat ", " Benchmarks.names)
                    (String.concat ", " Benchmarks.synthetic_names))))
        benchmarks;
      if repeat < 1 then raise (Circuit.Error "--repeat must be >= 1");
      validate_jobs jobs;
      if compare then begin
        if dry_run then
          raise (Circuit.Error "--compare times everything; drop --dry-run");
        bench_compare ~benchmarks ~repeat ~jobs ~out ~model ~gate
      end
      else begin
      let baseline =
        match against with
        | None -> None
        | Some path ->
          if not (Sys.file_exists path) then
            raise
              (Circuit.Error
                 (Printf.sprintf "--against: no such baseline file %S" path));
          let entries =
            Report.bench_entries_of_json
              (In_channel.with_open_text path In_channel.input_all)
          in
          if entries = [] then
            raise
              (Circuit.Error
                 (Printf.sprintf "--against: %S holds no bench entries" path));
          (* A median of zero means the baseline was never actually
             timed (a --dry-run artefact, or a hand-edited file). The
             2x gate would then compare against 0 — inf/nan ratios that
             either always pass or crash — so refuse the whole file up
             front with a usage error. *)
          List.iter
            (fun (e : Report.bench_entry) ->
              if e.Report.median_ns <= 0. then
                raise
                  (Circuit.Error
                     (Printf.sprintf
                        "--against: baseline entry %S has median %g ns — \
                         the file was never timed (a --dry-run artefact?); \
                         re-record it with `merced bench`"
                        e.Report.entry_name e.Report.median_ns)))
            entries;
          Some entries
      in
      let plan = { Bench_runner.benchmarks; repeat; jobs } in
      if dry_run then begin
        List.iter
          (fun (e : Report.bench_entry) ->
            Printf.printf "%s jobs=%d\n" e.Report.entry_name e.Report.jobs)
          (Bench_runner.entry_names plan);
        0
      end
      else begin
        let progress name = Printf.eprintf "bench: %s\n%!" name in
        let entries = Bench_runner.run ~progress plan in
        let json = Report.bench_json ~name:"pipeline" ~entries in
        let oc = open_out out in
        output_string oc json;
        close_out oc;
        Printf.printf "wrote %s (%d entries)\n" out (List.length entries);
        match baseline with
        | None -> 0
        | Some baseline ->
          if bench_guard ~baseline entries > 0 then 1 else 0
      end
      end)

let bench_cmd =
  let doc =
    "Time every pipeline phase (generate, flow, cluster, assign, retime, \
     fault simulation at 1 and --jobs workers) on a benchmark sweep and \
     write the median/MAD regression baseline as BENCH JSON."
  in
  let benchmarks =
    Arg.(value
         & opt (list string) Bench_runner.default_plan.Bench_runner.benchmarks
         & info [ "benchmarks" ] ~docv:"NAMES"
             ~doc:"Comma-separated circuits to sweep: \"s27\", registry \
                   benchmark names, or the synthetic scale profiles \
                   (synth10k, synth100k, synth1m).")
  in
  let repeat =
    Arg.(value & opt int Bench_runner.default_plan.Bench_runner.repeat
         & info [ "repeat" ] ~docv:"N"
             ~doc:"Timed samples per phase (median and MAD are over these).")
  in
  let jobs =
    Arg.(value & opt int Bench_runner.default_plan.Bench_runner.jobs
         & info [ "j"; "jobs" ] ~docv:"N"
             ~doc:"Worker count of the parallel fault-simulation entry.")
  in
  let out =
    Arg.(value & opt string "BENCH_pipeline.json"
         & info [ "o"; "out" ] ~docv:"FILE"
             ~doc:"Where to write the JSON baseline.")
  in
  let against =
    Arg.(value & opt (some string) None
         & info [ "against" ] ~docv:"FILE"
             ~doc:"Compare the fresh medians against this committed BENCH \
                   baseline and exit 1 when any regresses past its gate: \
                   2x for retime entries, 3x for the noisier fault_sim \
                   entries (matched by name and job count; a circuit-shape \
                   mismatch also fails).")
  in
  let compare =
    Arg.(value & flag
         & info [ "compare" ]
             ~doc:"Race --dispatch auto against every forced \
                   configuration (each partitioner; fault-sim word \
                   widths 1/8/32, serial and pooled) per circuit, check \
                   every configuration produces identical results, and \
                   exit 1 when auto falls outside --gate of the best \
                   forced mode. Writes BENCH_dispatch.json unless --out \
                   overrides it.")
  in
  let gate =
    Arg.(value & opt float Dispatch_compare.default_gate
         & info [ "gate" ] ~docv:"FACTOR"
             ~doc:"--compare: auto must stay within this factor of the \
                   best comparable forced median per stage.")
  in
  let dry_run =
    Arg.(value & flag
         & info [ "dry-run" ]
             ~doc:"List the entries that would be measured and exit \
                   without timing anything.")
  in
  Cmd.v (Cmd.info "bench" ~doc ~exits)
    Term.(const bench_run $ benchmarks $ repeat $ jobs $ out $ against
          $ compare $ model_arg $ gate $ dry_run $ trace_arg)

(* ------------------------------------------------------------------ *)
(* campaign                                                            *)

let campaign_run profiles lk beta seed substrate fault_cutover words no_drop
    max_width min_coverage no_prune out probe probe_repeat dispatch model jobs
    trace =
  wrap_status ?trace (fun () ->
      let params = params_of ~substrate ~fault_cutover lk beta seed in
      let plan =
        {
          Campaign.profiles;
          params;
          words;
          drop = not no_drop;
          max_width;
          min_coverage;
          prune = not no_prune;
          probe;
          probe_repeat;
          dispatch = dispatch_model dispatch model;
        }
      in
      with_jobs jobs (fun pool ->
          (* body shared with `merced serve` for byte-identical replies;
             the JSON artefact rides on the report the op hands back *)
          let outcome, report = Serve_ops.campaign ?pool plan in
          print_string outcome.Serve_ops.output;
          (match out with
           | None -> ()
           | Some path ->
             let oc = open_out path in
             output_string oc (Campaign.to_json report);
             close_out oc;
             Printf.printf "wrote %s (%d circuits)\n" path
               (List.length report.Campaign.circuits));
          outcome.Serve_ops.exit_code))

let campaign_cmd =
  let doc =
    "Run a whole-chip self-test campaign: compile every requested \
     profile, pseudo-exhaustively fault-simulate each partition through \
     the word-parallel batch engine (with fault dropping), and report \
     per-circuit coverage, aliasing and pipelined test time — \
     optionally as a regression-tracked BENCH_campaign.json. Circuits \
     run concurrently across --jobs domains; results are identical at \
     any job count."
  in
  let profiles =
    Arg.(value
         & opt (list string) Campaign.default_plan.Campaign.profiles
         & info [ "profiles" ] ~docv:"NAMES"
             ~doc:"Comma-separated circuits to campaign over: \"s27\", \
                   registry benchmark names, or synthetic profiles \
                   (default: all seventeen paper benchmarks).")
  in
  let words =
    Arg.(value & opt int Campaign.default_plan.Campaign.words
         & info [ "words" ] ~docv:"W"
             ~doc:"Machine words of patterns per gate evaluation in the \
                   batch engine.")
  in
  let no_drop =
    Arg.(value & flag & info [ "no-drop" ]
           ~doc:"Keep simulating detected faults instead of retiring \
                 them (reference semantics; verdicts are identical \
                 either way).")
  in
  let max_width =
    Arg.(value & opt int Campaign.default_plan.Campaign.max_width
         & info [ "max-width" ] ~docv:"W"
             ~doc:"Skip exhaustive simulation of segments wider than this.")
  in
  let min_coverage =
    Arg.(value & opt float Campaign.default_plan.Campaign.min_coverage
         & info [ "min-coverage" ] ~docv:"FRAC"
             ~doc:"Fail (exit 1) when any circuit's testable-fault \
                   coverage lands below this fraction; 0 disables the \
                   gate.")
  in
  let no_prune =
    Arg.(value & flag & info [ "no-prune" ]
           ~doc:"Simulate statically-untestable faults too instead of \
                 pruning them before simulation (coverage then uses the \
                 raw denominator; detected sets are identical either \
                 way).")
  in
  let out =
    Arg.(value & opt (some string) (Some "BENCH_campaign.json")
         & info [ "o"; "out" ] ~docv:"FILE"
             ~doc:"Where to write the JSON campaign report; \
                   $(b,--no-out) suppresses it.")
  in
  let no_out =
    Arg.(value & flag & info [ "no-out" ]
           ~doc:"Do not write the JSON report file.")
  in
  let probe =
    Arg.(value & opt (some string) None
         & info [ "probe" ] ~docv:"CIRCUIT"
             ~doc:"Also measure single-word vs multi-word \
                   per-fault-pattern throughput on this circuit and \
                   record the ratio in the report.")
  in
  let probe_repeat =
    Arg.(value & opt int Campaign.default_plan.Campaign.probe_repeat
         & info [ "repeat" ] ~docv:"N"
             ~doc:"Timed samples per probe measurement (median of).")
  in
  let out_term =
    Term.(const (fun out no_out -> if no_out then None else out) $ out $ no_out)
  in
  Cmd.v (Cmd.info "campaign" ~doc ~exits)
    Term.(const campaign_run $ profiles $ lk_arg $ beta_arg $ seed_arg
          $ substrate_arg $ fault_cutover_arg $ words $ no_drop $ max_width
          $ min_coverage $ no_prune $ out_term $ probe $ probe_repeat
          $ dispatch_arg $ model_arg $ jobs_arg $ trace_arg)

(* ------------------------------------------------------------------ *)
(* calibrate                                                           *)

let calibrate_run from out ridge trace =
  wrap ?trace (fun () ->
      if ridge < 0.0 then
        raise
          (Circuit.Error (Printf.sprintf "--ridge must be >= 0, got %g" ridge));
      if not (Sys.file_exists from) then
        raise
          (Circuit.Error (Printf.sprintf "--from: no such BENCH file %S" from));
      let entries =
        Report.bench_entries_of_json
          (In_channel.with_open_text from In_channel.input_all)
      in
      if entries = [] then
        raise
          (Circuit.Error
             (Printf.sprintf "--from: %S holds no bench entries" from));
      let m = Cost_model.fit ~ridge entries in
      let oc = open_out out in
      output_string oc (Cost_model.to_json m);
      close_out oc;
      Printf.printf "wrote %s (%d stages from %d entries, fingerprint %s)\n"
        out
        (List.length m.Cost_model.stages)
        (List.length entries)
        (Cost_model.fingerprint m))

let calibrate_cmd =
  let doc =
    "Fit the per-stage cost model behind $(b,--dispatch auto) from a \
     BENCH_pipeline.json sweep (ridge-regularised least squares over \
     the per-entry circuit statistics) and write the versioned \
     COST_MODEL.json artefact."
  in
  let from =
    Arg.(value & opt string "BENCH_pipeline.json"
         & info [ "from" ] ~docv:"FILE"
             ~doc:"BENCH sweep to fit from (a $(b,merced bench) artefact; \
                   its entries must carry circuit statistics).")
  in
  let out =
    Arg.(value & opt string "COST_MODEL.json"
         & info [ "o"; "out" ] ~docv:"FILE"
             ~doc:"Where to write the fitted model.")
  in
  let ridge =
    Arg.(value & opt float Cost_model.default_ridge
         & info [ "ridge" ] ~docv:"LAMBDA"
             ~doc:"Relative ridge weight of the fit (keeps the normal \
                   equations well-posed with few circuits).")
  in
  Cmd.v (Cmd.info "calibrate" ~doc ~exits)
    Term.(const calibrate_run $ from $ out $ ridge $ trace_arg)

(* ------------------------------------------------------------------ *)
(* serve                                                               *)

let socket_arg =
  let doc = "Unix socket path the daemon listens on." in
  Arg.(required & opt (some string) None & info [ "socket" ] ~docv:"PATH" ~doc)

let serve_run socket jobs queue_limit timeout_ms quiet trace =
  wrap ?trace (fun () ->
      Ppet_serve.Server.run
        {
          Ppet_serve.Server.socket_path = socket;
          jobs;
          queue_limit;
          default_timeout_ms = timeout_ms;
          quiet;
        })

let serve_cmd =
  let doc =
    "Run the merced compile daemon: accept compile/lint/selftest/bench \
     jobs as newline-delimited JSON over a Unix socket, schedule them \
     across a domain pool, stream per-stage progress, and answer repeat \
     submissions from a content-addressed result cache. Runs until a \
     shutdown request, then drains the queue and exits."
  in
  let jobs =
    Arg.(value & opt int 2 & info [ "j"; "jobs" ] ~docv:"N"
           ~doc:"Worker domains executing jobs concurrently (each job \
                 itself runs serially, so results match the one-shot \
                 CLI byte for byte).")
  in
  let queue_limit =
    Arg.(value & opt int 64 & info [ "queue-limit" ] ~docv:"N"
           ~doc:"Jobs admitted to the queue before submissions are \
                 answered with a busy error (backpressure).")
  in
  let timeout_ms =
    Arg.(value & opt (some int) None & info [ "timeout-ms" ] ~docv:"MS"
           ~doc:"Default per-job queue-wait timeout for requests that \
                 set none.")
  in
  let quiet =
    Arg.(value & flag & info [ "q"; "quiet" ]
           ~doc:"Suppress the lifecycle lines on standard error.")
  in
  Cmd.v (Cmd.info "serve" ~doc ~exits)
    Term.(const serve_run $ socket_arg $ jobs $ queue_limit $ timeout_ms
          $ quiet $ trace_arg)

(* ------------------------------------------------------------------ *)
(* submit                                                              *)

(* A .bench file is shipped inline (the daemon may run in another
   directory), with title/file attached so diagnostics and titles match
   the one-shot CLI on the same path. Everything else — "s27", registry
   names, .v paths — goes as a spec for the server to resolve. *)
let source_fields circuit =
  if
    circuit <> "s27"
    && Sys.file_exists circuit
    && not (Filename.check_suffix circuit ".v")
  then
    [
      ("bench", Sjson.Str (In_channel.with_open_text circuit In_channel.input_all));
      ("title", Sjson.Str Filename.(remove_extension (basename circuit)));
      ("file", Sjson.Str circuit);
    ]
  else [ ("circuit", Sjson.Str circuit) ]

let submit_request ~op ~circuit ~suite ~stats ~shutdown ~lk ~beta ~seed
    ~substrate ~fault_cutover ~dispatch ~model ~verbose ~rules ~max_width
    ~benchmarks ~repeat ~ms ~timeout_ms ~progress =
  if stats then Sjson.Obj [ ("op", Sjson.Str "stats") ]
  else if shutdown then Sjson.Obj [ ("op", Sjson.Str "shutdown") ]
  else
    let common =
      [
        ("lk", Sjson.Num (float_of_int lk));
        ("beta", Sjson.Num (float_of_int beta));
        ("seed", Sjson.Num (float_of_int seed));
        ( "substrate",
          Sjson.Str (Params.substrate_name substrate) );
        ("fault_cutover", Sjson.Num (float_of_int fault_cutover));
      ]
      @ (match dispatch with
         | `Fixed -> []
         | `Auto ->
           (* the daemon may run on another machine: the model text ships
              inline, like .bench files do. Load it first so a bad model
              is this process's usage error, not a daemon error reply. *)
           let m = Cost_model.load model in
           [
             ("dispatch", Sjson.Str "auto");
             ("model", Sjson.Str (Cost_model.to_json m));
           ])
      @ (match timeout_ms with
         | Some t -> [ ("timeout_ms", Sjson.Num (float_of_int t)) ]
         | None -> [])
      @ if progress then [ ("progress", Sjson.Bool true) ] else []
    in
    match suite with
    | Some path -> (
      let text = In_channel.with_open_text path In_channel.input_all in
      match Sjson.of_string text with
      | Ok (Sjson.List jobs) ->
        Sjson.Obj [ ("op", Sjson.Str "suite"); ("jobs", Sjson.List jobs) ]
      | Ok _ ->
        raise
          (Circuit.Error
             (Printf.sprintf
                "--suite: %S must hold a JSON list of job objects" path))
      | Error msg ->
        raise (Circuit.Error (Printf.sprintf "--suite: %s: %s" path msg)))
    | None ->
      let need_circuit () =
        match circuit with
        | Some c -> source_fields c
        | None ->
          raise
            (Circuit.Error
               "submit: give a CIRCUIT (or --stats, --shutdown, --suite)")
      in
      let op_fields =
        match op with
        | `Compile ->
          (("op", Sjson.Str "compile") :: need_circuit ())
          @ if verbose then [ ("verbose", Sjson.Bool true) ] else []
        | `Lint ->
          (("op", Sjson.Str "lint") :: need_circuit ())
          @ (match rules with
             | [] -> []
             | r -> [ ("rules", Sjson.List (List.map (fun s -> Sjson.Str s) r)) ])
          @ if verbose then [ ("verbose", Sjson.Bool true) ] else []
        | `Selftest ->
          (("op", Sjson.Str "selftest") :: need_circuit ())
          @ [ ("max_width", Sjson.Num (float_of_int max_width)) ]
        | `Analyze -> ("op", Sjson.Str "analyze") :: need_circuit ()
        | `Bench ->
          [
            ("op", Sjson.Str "bench");
            ( "benchmarks",
              Sjson.List (List.map (fun s -> Sjson.Str s) benchmarks) );
            ("repeat", Sjson.Num (float_of_int repeat));
          ]
        | `Campaign ->
          (* --benchmarks doubles as the profile list; words and the
             dropping policy ride the daemon defaults unless the suite
             manifest overrides them *)
          [
            ("op", Sjson.Str "campaign");
            ( "profiles",
              Sjson.List (List.map (fun s -> Sjson.Str s) benchmarks) );
            ("max_width", Sjson.Num (float_of_int max_width));
          ]
        | `Sleep ->
          [ ("op", Sjson.Str "sleep"); ("ms", Sjson.Num (float_of_int ms)) ]
      in
      Sjson.Obj (op_fields @ common)

let submit_run socket op circuit suite stats shutdown lk beta seed substrate
    fault_cutover dispatch model verbose rules max_width benchmarks repeat ms
    timeout_ms progress meta retry_for trace =
  wrap_status ?trace (fun () ->
      let req =
        submit_request ~op ~circuit ~suite ~stats ~shutdown ~lk ~beta ~seed
          ~substrate ~fault_cutover ~dispatch ~model ~verbose ~rules
          ~max_width ~benchmarks ~repeat ~ms ~timeout_ms ~progress
      in
      let on_progress ~stage phase =
        Printf.eprintf "progress: %s %s\n%!" stage
          (match phase with `Begin -> "begin" | `End -> "end")
      in
      let reply =
        Ppet_serve.Client.request ~retry_for
          ?on_progress:(if progress then Some on_progress else None)
          ~socket req
      in
      match reply with
      | Error msg -> raise (Circuit.Error msg)
      | Ok frame -> (
        match Sjson.str_member "type" frame with
        | Some "error" ->
          let stage =
            Option.value ~default:"session" (Sjson.str_member "stage" frame)
          in
          let message =
            Option.value ~default:"unknown error"
              (Sjson.str_member "message" frame)
          in
          Printf.eprintf "error: %s: %s\n" stage message;
          2
        | Some "result" -> (
          match Sjson.str_member "op" frame with
          | Some "shutdown" -> 0
          | Some "stats" ->
            print_endline (Sjson.to_string frame);
            0
          | Some "suite" ->
            print_endline (Sjson.to_string frame);
            let n key =
              Option.value ~default:0 (Sjson.int_member key frame)
            in
            if n "errors" > 0 then 2 else if n "findings" > 0 then 1 else 0
          | _ ->
            print_string
              (Option.value ~default:"" (Sjson.str_member "output" frame));
            if meta then
              Printf.eprintf "cached: %b\n"
                (Option.value ~default:false
                   (Sjson.bool_member "cached" frame));
            Option.value ~default:2 (Sjson.int_member "exit_code" frame))
        | _ -> raise (Circuit.Error "malformed reply: no \"type\" field")))

let submit_cmd =
  let doc =
    "Submit a job to a running $(b,merced serve) daemon and print the \
     result exactly as the one-shot subcommand would (same bytes, same \
     exit code). Also speaks the control ops: --stats, --shutdown, and \
     --suite batch manifests."
  in
  let op =
    Arg.(value
         & opt
             (enum
                [ ("compile", `Compile); ("lint", `Lint);
                  ("selftest", `Selftest); ("analyze", `Analyze);
                  ("bench", `Bench); ("campaign", `Campaign);
                  ("sleep", `Sleep) ])
             `Compile
         & info [ "op" ] ~docv:"OP"
             ~doc:"Job kind: $(b,compile) (= partition), $(b,lint), \
                   $(b,selftest), $(b,analyze), $(b,bench), \
                   $(b,campaign) (--benchmarks names the profiles), or \
                   $(b,sleep) (diagnostic).")
  in
  let circuit =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"CIRCUIT"
           ~doc:"Circuit for compile/lint/selftest: a .bench or .v path, \
                 \"s27\", or a benchmark name. .bench files are sent \
                 inline, so the daemon needs no access to the file.")
  in
  let suite =
    Arg.(value & opt (some string) None & info [ "suite" ] ~docv:"FILE"
           ~doc:"Submit a whole manifest (a JSON list of job objects) as \
                 one batch; prints the aggregated report.")
  in
  let stats =
    Arg.(value & flag & info [ "stats" ] ~doc:"Query daemon statistics.")
  in
  let shutdown =
    Arg.(value & flag & info [ "shutdown" ]
           ~doc:"Ask the daemon to drain its queue and exit.")
  in
  let verbose =
    Arg.(value & flag & info [ "v"; "verbose" ]
           ~doc:"compile: list every partition; lint: include infos.")
  in
  let rules =
    Arg.(value & opt (list string) [] & info [ "rules" ] ~docv:"IDS"
           ~doc:"lint: comma-separated rule ids (default: all).")
  in
  let max_width =
    Arg.(value & opt int 14 & info [ "max-width" ] ~docv:"W"
           ~doc:"selftest: skip exhaustive simulation of wider segments.")
  in
  let benchmarks =
    Arg.(value
         & opt (list string) Bench_runner.default_plan.Bench_runner.benchmarks
         & info [ "benchmarks" ] ~docv:"NAMES" ~doc:"bench: circuits to sweep.")
  in
  let repeat =
    Arg.(value & opt int Bench_runner.default_plan.Bench_runner.repeat
         & info [ "repeat" ] ~docv:"N" ~doc:"bench: timed samples per phase.")
  in
  let ms =
    Arg.(value & opt int 100 & info [ "ms" ] ~docv:"MS"
           ~doc:"sleep: how long the diagnostic job holds a worker.")
  in
  let timeout_ms =
    Arg.(value & opt (some int) None & info [ "timeout-ms" ] ~docv:"MS"
           ~doc:"Fail the job if it still waits in the daemon's queue \
                 after this long.")
  in
  let progress =
    Arg.(value & flag & info [ "progress" ]
           ~doc:"Stream per-stage progress lines to standard error.")
  in
  let meta =
    Arg.(value & flag & info [ "meta" ]
           ~doc:"Also print reply metadata (cache hit?) to standard error.")
  in
  let retry_for =
    Arg.(value & opt float 5.0 & info [ "retry-for" ] ~docv:"SECS"
           ~doc:"Keep retrying the connection this long before giving up \
                 (absorbs a daemon still starting).")
  in
  Cmd.v (Cmd.info "submit" ~doc ~exits)
    Term.(const submit_run $ socket_arg $ op $ circuit $ suite $ stats
          $ shutdown $ lk_arg $ beta_arg $ seed_arg $ substrate_arg
          $ fault_cutover_arg $ dispatch_arg $ model_arg $ verbose $ rules
          $ max_width $ benchmarks $ repeat $ ms $ timeout_ms $ progress
          $ meta $ retry_for $ trace_arg)

(* ------------------------------------------------------------------ *)

let main_cmd =
  let doc = "Merced: area-efficient pipelined pseudo-exhaustive testing with retiming" in
  let info = Cmd.info "merced" ~version:"1.0.0" ~doc ~exits in
  Cmd.group info
    [ stats_cmd; partition_cmd; generate_cmd; selftest_cmd; analyze_cmd;
      insert_cmd; retime_cmd; dot_cmd; sweep_cmd; check_cmd; fuzz_cmd;
      lint_cmd; bench_cmd; campaign_cmd; calibrate_cmd; serve_cmd;
      submit_cmd ]

let () =
  let code = Cmd.eval' main_cmd in
  (* Cmdliner's own parse/internal errors (124/125) map onto the
     documented usage/internal code *)
  exit
    (if code = Cmd.Exit.cli_error || code = Cmd.Exit.internal_error then 2
     else code)
